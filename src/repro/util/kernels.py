"""Fused decode kernels: the aggregator-side hot path, tiled and branch-free.

Every E14–E17 profile says the same thing: privatization is cheap and
*decoding* is the bottleneck.  The naive aggregator path for local
hashing — ``hash_cross`` + ``==`` + ``.sum`` — spends its time in two
places the hardware hates:

1. **Two uint64 divisions per cell.**  The affine hash
   ``((a·x + b) mod p) mod g`` over the Mersenne prime ``p = 2³¹ − 1``
   compiles to two hardware ``div`` instructions per (report, candidate)
   pair, each tens of cycles and unpipelined.
2. **Materialized intermediates.**  The ``(n, d)`` int64 hash matrix,
   the bool comparison matrix and several uint64 temporaries each cost a
   full write+read of main memory per chunk — and when several shard
   threads decode at once, those multi-MB temporaries evict each other
   from the shared cache, which is why summed decode time *grows* with
   shard count under the thread backend.

This module replaces both:

* :func:`mersenne_reduce` — branch-free shift-add reduction modulo the
  Mersenne prime (``2³¹ ≡ 1 (mod p)`` makes ``x mod p`` two fold steps
  plus one conditional subtract; no division).
* :func:`mod_magic` / :func:`apply_mod` — exact division-free ``mod g``
  for 31-bit dividends via the Granlund–Montgomery multiply-shift magic
  number (the same trick compilers emit for constant divisors).
* :class:`FusedSupportKernel` — the fused hash→compare→accumulate
  support-count kernel.  It tiles (reports × candidates) into
  cache-sized blocks over *preallocated* scratch, evaluates the affine
  hash in place, compares against each report's value and adds matches
  straight into an int64 counts vector — the ``(n, d)`` matrix is never
  materialized.  Report tiles optionally fan out across a shared thread
  pool (the inner loops are pure NumPy and release the GIL), with each
  task accumulating into its own partial counts vector; integer
  addition is associative, so the result is bit-identical regardless of
  thread count or schedule.
* :func:`hadamard_support_counts` — bit-sliced Hadamard candidate
  decoding: report index bit-planes and ±1 signs are packed into machine
  words (:func:`repro.util.wht.pack_bit_planes`), the popcount parity
  ``popcount(j & v) mod 2`` becomes an XOR of planes selected by each
  candidate's bits, and the signed dot contracts via two
  ``np.bitwise_count`` popcounts — 64 reports per word op, replacing the
  int64 matmul NumPy won't BLAS-accelerate (the matmul tier survives as
  :func:`_matmul_hadamard_support_counts` for benchmarking).
* :func:`column_support_counts` — tiled integer column sums for the
  dense unary (SUE/OUE) support path.

All kernels are integer arithmetic end to end, so their outputs are
**bit-identical** to the reference implementations by construction; the
property suite pins this for every registered oracle.

Kernel plans and caching
------------------------
Streaming consumers (``EventTimeCollector`` panes, ``RepeatedCollector``
rounds, ``collect_group`` chunks) decode many small report batches
against the *same* candidate set.  The candidate-side setup — premixed
candidates + mod-``g`` magic for local hashing, packed candidate bit
masks for Hadamard — is captured in reusable *plans*
(:class:`FusedSupportKernel`, :class:`HadamardCandidatePlan`) and cached
in the process-wide :data:`kernel_plan_cache`, keyed by the oracle's
config fingerprint plus :func:`candidate_digest`.  Plans are immutable
(their arrays are marked read-only) and hold **no per-batch scratch** —
scratch lives in a per-thread pool below — so cache entries are safe to
share across threads, accumulators, ``copy()`` and serialization
round-trips.  The cache is LRU-bounded (``REPRO_KERNEL_PLAN_CACHE``
caps the entry count; ``0`` disables caching entirely).

Scheduling
----------
Tile tasks fan out across a process-wide pool of daemon workers.  The
pool is *core-affine* by default: report spans are deterministic
(``linspace`` bounds), and span ``k`` is always dispatched to worker
``k``, so repeated decodes of the same population hit the same worker —
and thus the same warm core caches — instead of being round-robin
scattered.  ``REPRO_KERNEL_AFFINITY=0`` opts out (rotating dispatch).
Per-worker tile counts are reported through :class:`KernelTiming` so
``ShardStats`` can surface the placement.

Timing
------
:func:`kernel_timing_scope` opens a thread-local scope that every kernel
invocation reports into, split into *hash* seconds (affine evaluation +
reductions) and *accumulate* seconds (compare + count).  The sharded
pipeline wraps each shard's ``absorb`` in a scope so ``ShardStats`` can
say where decode time goes.  Stages are timed on the per-thread CPU
clock (``time.thread_time``), which does not advance while the OS has a
thread descheduled: when many shard threads share cores, wall-clock
decode attribution inflates with the number of concurrent shards (each
shard's wall time includes everyone else's time slices) while these
numbers stay flat — they measure the CPU the kernels actually consumed.
"""

from __future__ import annotations

import hashlib
import os
import queue
import threading
import time
from collections import OrderedDict
from concurrent.futures import Future
from contextlib import contextmanager
from dataclasses import dataclass, field

import numpy as np

from repro.util.wht import pack_bit_planes, pack_sign_mask

__all__ = [
    "MERSENNE_P",
    "mersenne_reduce",
    "mod_magic",
    "apply_mod",
    "FusedSupportKernel",
    "HadamardCandidatePlan",
    "hadamard_support_counts",
    "column_support_counts",
    "KernelTiming",
    "kernel_timing_scope",
    "kernel_thread_count",
    "kernel_affinity_enabled",
    "KernelPlanCache",
    "kernel_plan_cache",
    "plan_cache_capacity",
    "candidate_digest",
]

#: The Mersenne prime 2³¹ − 1 underlying the affine hash family.
MERSENNE_P = np.uint64(2**31 - 1)

_U31 = np.uint64(31)
_ZERO = np.uint64(0)

# ---------------------------------------------------------------------------
# branch-free modular arithmetic
# ---------------------------------------------------------------------------


def mersenne_reduce(x: np.ndarray, out: np.ndarray | None = None) -> np.ndarray:
    """``x mod (2³¹ − 1)`` for any uint64 input, without division.

    Because ``2³¹ ≡ 1 (mod p)``, splitting ``x = hi·2³¹ + lo`` gives
    ``x ≡ hi + lo``.  Two fold steps bring any 64-bit value under
    ``p + 8`` (first fold: < 2³⁴; second: ≤ p + 7) and one conditional
    subtract lands in ``[0, p)`` — the canonical residue, bit-identical
    to ``x % p``.

    ``out`` may alias ``x`` (the common in-place use); one temporary the
    shape of ``x`` is allocated for the low halves unless the caller
    tiles through preallocated scratch (see :class:`FusedSupportKernel`).
    """
    x = np.asarray(x, dtype=np.uint64)
    if out is None:
        out = x.copy()
    elif out is not x:
        np.copyto(out, x)
    lo = np.bitwise_and(out, MERSENNE_P)
    np.right_shift(out, _U31, out=out)
    np.add(out, lo, out=out)
    np.bitwise_and(out, MERSENNE_P, out=lo)
    np.right_shift(out, _U31, out=out)
    np.add(out, lo, out=out)
    np.subtract(out, MERSENNE_P, out=out, where=out >= MERSENNE_P)
    return out


def _mersenne_reduce_into(x: np.ndarray, lo: np.ndarray, mask: np.ndarray) -> None:
    """In-place Mersenne reduction of ``x`` using caller-owned scratch.

    ``lo`` (uint64) and ``mask`` (bool) must match ``x``'s shape; nothing
    is allocated.  This is the tile-loop body of the fused kernels.
    """
    np.bitwise_and(x, MERSENNE_P, out=lo)
    np.right_shift(x, _U31, out=x)
    np.add(x, lo, out=x)
    np.bitwise_and(x, MERSENNE_P, out=lo)
    np.right_shift(x, _U31, out=x)
    np.add(x, lo, out=x)
    np.greater_equal(x, MERSENNE_P, out=mask)
    np.subtract(x, MERSENNE_P, out=x, where=mask)


#: Largest divisor/dividend bound for the multiply-shift magic: the
#: Granlund–Montgomery proof below needs dividends < 2³¹ (which the
#: Mersenne reduction guarantees) and the multiplier to fit so that
#: ``x·m < 2⁶³`` (no uint64 overflow).
_MAGIC_MAX = 1 << 31


def mod_magic(divisor: int) -> tuple[np.uint64, np.uint64]:
    """Multiply-shift magic ``(m, s)`` with ``x // d == (x·m) >> s``.

    Exact for every dividend ``x < 2³¹`` (Granlund–Montgomery: with
    ``l = ⌈log₂ d⌉`` and ``m = ⌊2^(31+l)/d⌋ + 1``, the error term
    ``m·d − 2^(31+l)`` lies in ``(0, d] ⊆ (0, 2^l]``, which is the exact
    condition of their round-up theorem).  ``x·m ≤ (2³¹−1)·(2³²+1) < 2⁶³``
    so the uint64 product never overflows.
    """
    d = int(divisor)
    if not 1 <= d < _MAGIC_MAX:
        raise ValueError(f"divisor must be in [1, 2^31), got {divisor}")
    l = max(1, (d - 1).bit_length())
    return np.uint64((1 << (31 + l)) // d + 1), np.uint64(31 + l)


def apply_mod(
    x: np.ndarray, divisor: int, magic: tuple[np.uint64, np.uint64] | None = None
) -> np.ndarray:
    """``x mod divisor`` for uint64 ``x < 2³¹`` via the multiply-shift magic.

    Falls back to hardware ``%`` when the divisor is out of magic range.
    Dividends at or above 2³¹ are **rejected**: the Granlund–Montgomery
    round-up proof only covers 31-bit dividends, and beyond it the
    multiply-shift quietly returns wrong residues.  Every internal caller
    reduces modulo the Mersenne prime first (so dividends are < p < 2³¹
    by construction); the guard is for everyone else.

    Returns a fresh array; the fused kernels inline the same three
    operations over scratch instead.
    """
    x = np.asarray(x, dtype=np.uint64)
    d = int(divisor)
    if not 1 <= d < _MAGIC_MAX:
        return x % np.uint64(d)
    if x.size and int(x.max()) >= _MAGIC_MAX:
        raise ValueError(
            "apply_mod dividends must be < 2^31 for the multiply-shift "
            "magic (reduce mod p first); use hardware % for wider values"
        )
    m, s = magic if magic is not None else mod_magic(d)
    q = (x * m) >> s
    return x - q * np.uint64(d)


def _apply_mod_into(
    x: np.ndarray, g: np.uint64, m: np.uint64, s: np.uint64, q: np.ndarray
) -> None:
    """In-place ``x mod g`` over caller scratch ``q`` (shape of ``x``)."""
    np.multiply(x, m, out=q)
    np.right_shift(q, s, out=q)
    np.multiply(q, g, out=q)
    np.subtract(x, q, out=x)


# ---------------------------------------------------------------------------
# timing scopes
# ---------------------------------------------------------------------------


#: Per-thread CPU clock for kernel stage timing: unlike ``perf_counter``
#: it does not advance while the OS has the thread descheduled, so stage
#: timings stay schedule-independent when many shard threads share cores
#: (summing tile tasks' thread time = total CPU the kernel consumed).
_thread_clock = getattr(time, "thread_time", time.perf_counter)


@dataclass
class KernelTiming:
    """Accumulated decode-kernel compute time, split by kernel stage.

    ``hash_seconds`` covers affine evaluation + modular reductions;
    ``accumulate_seconds`` covers compare + count (or gather + sum).
    Both sum the per-thread CPU clock across tile tasks: schedule- and
    contention-independent, unlike wall time around the kernel call.

    ``worker_tiles`` maps pool-worker slot → number of tiles that worker
    processed for this scope (slot ``-1`` is inline execution on the
    calling thread).  Under affinity scheduling the histogram shows each
    worker pinned to its span; under scatter it spreads.
    """

    hash_seconds: float = 0.0
    accumulate_seconds: float = 0.0
    worker_tiles: dict[int, int] = field(default_factory=dict)
    _lock: threading.Lock = field(
        default_factory=threading.Lock, repr=False, compare=False
    )

    def add(
        self,
        hash_seconds: float,
        accumulate_seconds: float,
        *,
        worker: int | None = None,
        tiles: int = 0,
    ) -> None:
        with self._lock:
            self.hash_seconds += hash_seconds
            self.accumulate_seconds += accumulate_seconds
            if worker is not None and tiles:
                self.worker_tiles[worker] = (
                    self.worker_tiles.get(worker, 0) + tiles
                )


_scope_local = threading.local()


def _active_timing() -> KernelTiming | None:
    return getattr(_scope_local, "timing", None)


@contextmanager
def kernel_timing_scope():
    """Collect kernel stage timings from every kernel call in this thread.

    Scopes nest: the innermost active scope receives the timings.  Tile
    tasks fanned out to the shared pool report back into the scope that
    was active at the *call site*, so a shard thread wrapping ``absorb``
    sees its own kernels' time even when the tiles ran elsewhere.
    """
    timing = KernelTiming()
    previous = _active_timing()
    _scope_local.timing = timing
    try:
        yield timing
    finally:
        _scope_local.timing = previous


# ---------------------------------------------------------------------------
# kernel plan cache
# ---------------------------------------------------------------------------

_PLAN_CACHE_ENV = "REPRO_KERNEL_PLAN_CACHE"
_PLAN_CACHE_DEFAULT = 64


def plan_cache_capacity() -> int:
    """Entry cap for the process-wide kernel plan cache.

    ``REPRO_KERNEL_PLAN_CACHE`` overrides (``0`` disables caching);
    unparsable values fall back to the default of
    ``_PLAN_CACHE_DEFAULT`` entries.  Plans are small — premixed
    candidates plus packed bit masks, a few hundred KB at heavy-hitter
    scale — so the default cap bounds the cache at tens of MB worst
    case.
    """
    env = os.environ.get(_PLAN_CACHE_ENV, "").strip()
    if env:
        try:
            return max(0, int(env))
        except ValueError:
            pass
    return _PLAN_CACHE_DEFAULT


def candidate_digest(values: np.ndarray) -> bytes:
    """Content digest of a candidate array, for plan-cache keys.

    Hashes dtype, shape and raw bytes with blake2b: two candidate sets
    collide only if they are byte-identical, so a cached plan can never
    be served for a different candidate list.
    """
    arr = np.ascontiguousarray(values)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.digest()


class KernelPlanCache:
    """Process-wide LRU cache of candidate-side decode plans.

    Keys are ``(kind, *config fingerprint parts, candidate digest)``
    tuples built by the oracles; values are immutable plan objects
    (:class:`FusedSupportKernel`, :class:`HadamardCandidatePlan`).
    Because plans hold no per-batch scratch and their arrays are
    read-only, entries are shared freely across threads and
    accumulators — ``copy()`` and ``to_bytes()`` round-trips never see
    the cache at all (nothing cache-related is ever stored on an
    accumulator).

    ``get`` builds outside the lock on a miss: a concurrent builder may
    do duplicate work, but the critical section stays tiny and the
    first-stored plan wins (both builds are deterministic and
    equivalent).
    """

    def __init__(self) -> None:
        self._entries: OrderedDict[tuple, object] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: tuple, build):
        capacity = plan_cache_capacity()
        if capacity <= 0:
            with self._lock:
                self.misses += 1
            return build()
        with self._lock:
            cached = self._entries.get(key)
            if cached is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return cached
        value = build()
        with self._lock:
            existing = self._entries.get(key)
            if existing is not None:
                self._entries.move_to_end(key)
                self.hits += 1
                return existing
            self.misses += 1
            self._entries[key] = value
            while len(self._entries) > capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
        return value

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict[str, int]:
        with self._lock:
            return {
                "entries": len(self._entries),
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
            }


#: The process-wide plan cache all oracles share.
kernel_plan_cache = KernelPlanCache()


# ---------------------------------------------------------------------------
# shared tile pool (core-affine)
# ---------------------------------------------------------------------------

_AFFINITY_ENV = "REPRO_KERNEL_AFFINITY"
_worker_slot = threading.local()


def kernel_affinity_enabled() -> bool:
    """Whether tile dispatch is core-affine (sticky span → worker).

    On by default; ``REPRO_KERNEL_AFFINITY=0`` (or ``false``/``off``/
    ``no``) switches to rotating round-robin dispatch.
    """
    env = os.environ.get(_AFFINITY_ENV, "").strip().lower()
    return env not in {"0", "false", "off", "no"}


def _current_worker_slot() -> int:
    """Pool-worker slot of the calling thread (``-1`` = not a worker)."""
    return getattr(_worker_slot, "idx", -1)


class _KernelPool:
    """Daemon worker threads with one task queue per worker.

    Unlike ``ThreadPoolExecutor``'s single shared queue, per-worker
    queues let the dispatcher *choose* which worker runs a task — the
    mechanism behind core-affine span scheduling.  Workers never submit
    work themselves, so queue order alone can't deadlock.
    """

    def __init__(self, size: int) -> None:
        self.size = size
        self._queues = [queue.SimpleQueue() for _ in range(size)]
        self._rotor = 0
        self._rotor_lock = threading.Lock()
        for idx in range(size):
            thread = threading.Thread(
                target=self._worker,
                args=(idx,),
                name=f"repro-kernel-{idx}",
                daemon=True,
            )
            thread.start()

    def _worker(self, idx: int) -> None:
        _worker_slot.idx = idx
        q = self._queues[idx]
        while True:
            item = q.get()
            if item is None:
                return
            future, fn = item
            if not future.set_running_or_notify_cancel():
                continue
            try:
                future.set_result(fn())
            except BaseException as exc:  # noqa: BLE001 - relayed to caller
                future.set_exception(exc)

    def submit(self, slot: int, fn) -> Future:
        future: Future = Future()
        self._queues[slot % self.size].put((future, fn))
        return future

    def next_scatter_slot(self) -> int:
        with self._rotor_lock:
            slot = self._rotor
            self._rotor = (self._rotor + 1) % self.size
            return slot

    def shutdown(self) -> None:
        """Stop workers after they drain already-queued tasks."""
        for q in self._queues:
            q.put(None)


_pool_lock = threading.Lock()
_pool: _KernelPool | None = None
_pool_size = 0


def kernel_thread_count() -> int:
    """Worker count for the shared tile pool.

    ``REPRO_KERNEL_THREADS`` overrides; the default is the CPU count.
    A value of 1 makes every kernel run inline (no pool, no overhead) —
    the right call on single-core machines and under test.
    """
    env = os.environ.get("REPRO_KERNEL_THREADS", "").strip()
    if env:
        try:
            return max(1, int(env))
        except ValueError:
            pass
    return max(1, os.cpu_count() or 1)


def _submit_to_shared_pool(threads: int, calls) -> list:
    """Submit tile tasks to one process-wide pool; returns their futures.

    Sharing one pool (instead of a pool per shard) is what keeps
    within-shard tile parallelism from oversubscribing the machine when
    the sharded pipeline's own thread backend is already fanning shards
    out: total in-flight tile tasks are bounded by the pool size.

    Dispatch is core-affine by default: ``calls[k]`` goes to worker
    ``k mod size``.  Report spans are deterministic (``linspace``
    bounds over the same population), so span ``k`` of every decode of
    that population lands on the same worker and reuses its warm core
    caches — and its thread-local scratch, already sized for the span.
    With ``REPRO_KERNEL_AFFINITY=0`` dispatch degrades to a rotating
    scatter (the pre-affinity behavior).

    Submission happens *inside* the pool lock: when a caller asks for
    more workers than the current pool has, the pool is replaced under
    the same lock — already-queued tasks still run to completion (each
    worker drains its queue before exiting) and no caller can race a
    submit against the swap.
    """
    global _pool, _pool_size
    with _pool_lock:
        if _pool is None or _pool_size < threads:
            if _pool is not None:
                _pool.shutdown()
            _pool = _KernelPool(threads)
            _pool_size = threads
        if kernel_affinity_enabled():
            return [_pool.submit(slot, fn) for slot, fn in enumerate(calls)]
        return [_pool.submit(_pool.next_scatter_slot(), fn) for fn in calls]


# ---------------------------------------------------------------------------
# per-thread scratch pool
# ---------------------------------------------------------------------------

#: Kernel scratch lives on the *thread*, not the kernel: plans stay
#: immutable (and therefore cacheable/copy-safe), repeated small absorbs
#: stop re-allocating tile buffers, and no two tasks can share a buffer
#: because a task runs on exactly one thread.  Buffers grow to the
#: largest tile a thread has seen and are bounded by the tile geometry
#: (≤ ``_TILE_CELLS`` cells each, ~9 MB per thread worst case).
_scratch_local = threading.local()


def _scratch_uint64(name: str, cells: int) -> np.ndarray:
    buf = getattr(_scratch_local, name, None)
    if buf is None or buf.shape[0] < cells:
        buf = np.empty(cells, dtype=np.uint64)
        setattr(_scratch_local, name, buf)
    return buf[:cells]


def _scratch_bool(cells: int) -> np.ndarray:
    buf = getattr(_scratch_local, "match", None)
    if buf is None or buf.shape[0] < cells:
        buf = np.empty(cells, dtype=bool)
        setattr(_scratch_local, "match", buf)
    return buf[:cells]


# ---------------------------------------------------------------------------
# the fused support-count kernel (OLH / BLH)
# ---------------------------------------------------------------------------

#: Default tile geometry: candidates × reports blocks of at most
#: ``_TILE_CELLS`` cells keep the three scratch planes (uint64 hash,
#: uint64 quotient, bool match) inside the last-level cache instead of
#: streaming multi-MB temporaries through main memory.
_TILE_CELLS = 1 << 19
_MAX_TILE_REPORTS = 1 << 14
#: Below this many (report × candidate) cells a kernel call runs inline
#: even when a pool is available — dispatch would cost more than it buys.
_MIN_PARALLEL_CELLS = 1 << 21


class FusedSupportKernel:
    """Fused hash→compare→accumulate support counting for local hashing.

    One instance is built per candidate list: the candidates are premixed
    into the prime field once, the mod-``g`` magic is precomputed, and
    every :meth:`support_counts` call streams report tiles through
    pooled per-thread scratch.  For value ``v`` and report ``(s, y)`` the
    kernel counts ``h_s(v) == y`` matches — exactly the quantity
    ``_LocalHashing.support_counts_for`` used to extract from the
    materialized ``hash_cross`` matrix, bit for bit.

    Instances are immutable decode *plans*: the candidate array is
    marked read-only and no per-batch state is ever stored on the
    object, so one instance can be cached in :data:`kernel_plan_cache`
    and shared across threads and accumulators.

    Parameters
    ----------
    premixed_candidates:
        Candidate values already premixed into ``[0, p)`` (the caller
        owns the splitmix bijection; see ``repro.util.hashing``).
    range_size:
        The hash range ``g``.
    threads:
        Tile-pool fan-out; ``None`` uses :func:`kernel_thread_count`.
    """

    def __init__(
        self,
        premixed_candidates: np.ndarray,
        range_size: int,
        *,
        threads: int | None = None,
    ) -> None:
        x = np.ascontiguousarray(premixed_candidates, dtype=np.uint64)
        if x.ndim != 1:
            raise ValueError(f"candidates must be 1-D, got shape {x.shape}")
        if x is premixed_candidates or np.shares_memory(x, premixed_candidates):
            x = x.copy()
        x.setflags(write=False)
        g = int(range_size)
        if g < 1:
            raise ValueError(f"range_size must be >= 1, got {range_size}")
        if g >= _MAGIC_MAX:
            raise ValueError(
                f"range_size must be < 2^31 for the fused kernel, got {range_size}"
            )
        self._x = x
        self._g = np.uint64(g)
        self._magic, self._shift = mod_magic(g)
        self._threads = threads
        d = max(1, x.shape[0])
        self._tile_candidates = min(d, 256)
        self._tile_reports = max(
            1, min(_MAX_TILE_REPORTS, _TILE_CELLS // self._tile_candidates)
        )

    @property
    def num_candidates(self) -> int:
        return int(self._x.shape[0])

    def support_counts(
        self, a: np.ndarray, b: np.ndarray, values: np.ndarray
    ) -> np.ndarray:
        """Per-candidate match counts for reports ``((a, b), values)``.

        ``a``/``b`` are the affine hash parameters of each report's seed
        (derived once per batch by the caller) and ``values`` the
        perturbed hashed values in ``[0, g)``.  Returns float64 counts —
        integers below 2⁵³, so float addition downstream stays exact.
        """
        a = np.ascontiguousarray(a, dtype=np.uint64)
        b = np.ascontiguousarray(b, dtype=np.uint64)
        y = np.ascontiguousarray(values, dtype=np.uint64)
        if a.shape != b.shape or a.shape != y.shape or a.ndim != 1:
            raise ValueError("a, b and values must be aligned 1-D arrays")
        d = self.num_candidates
        counts = np.zeros(d, dtype=np.int64)
        n = a.shape[0]
        if n and self._x.size:
            timing = _active_timing()
            threads = (
                self._threads if self._threads is not None else kernel_thread_count()
            )
            total_cells = n * d
            if threads > 1 and total_cells >= _MIN_PARALLEL_CELLS:
                spans = self._report_spans(n, threads)
                futures = _submit_to_shared_pool(
                    threads,
                    [
                        lambda lo=lo, hi=hi: self._count_span(
                            a, b, y, lo, hi, timing
                        )
                        for lo, hi in spans
                    ],
                )
                for future in futures:
                    counts += future.result()
            else:
                counts += self._count_span(a, b, y, 0, n, timing)
        return counts.astype(np.float64)

    @staticmethod
    def _report_spans(n: int, threads: int) -> list[tuple[int, int]]:
        """Contiguous report spans, one per tile task (schedule-free math:
        integer partial counts sum identically in any order)."""
        tasks = min(threads, max(1, n // _MAX_TILE_REPORTS))
        bounds = np.linspace(0, n, tasks + 1, dtype=np.int64)
        return [
            (int(lo), int(hi)) for lo, hi in zip(bounds[:-1], bounds[1:]) if hi > lo
        ]

    def _count_span(
        self,
        a: np.ndarray,
        b: np.ndarray,
        y: np.ndarray,
        lo: int,
        hi: int,
        timing: KernelTiming | None,
    ) -> np.ndarray:
        """Count matches for reports ``[lo, hi)`` over all candidates.

        Layout: candidates are the leading axis so the per-candidate
        count reduction sums along contiguous memory.  Scratch comes
        from the per-thread pool — repeated small absorbs (streaming
        panes) reuse the same buffers call after call, and under
        affinity scheduling each worker's buffers are already sized for
        its sticky span.
        """
        x = self._x
        d = x.shape[0]
        tile_r = min(self._tile_reports, hi - lo)
        tile_c = min(self._tile_candidates, d)
        cells = tile_c * tile_r
        block = _scratch_uint64("block", cells).reshape(tile_c, tile_r)
        scratch = _scratch_uint64("quotient", cells).reshape(tile_c, tile_r)
        match = _scratch_bool(cells).reshape(tile_c, tile_r)
        counts = np.zeros(d, dtype=np.int64)
        hash_s = 0.0
        acc_s = 0.0
        tiles = 0
        for r0 in range(lo, hi, tile_r):
            r1 = min(r0 + tile_r, hi)
            w = r1 - r0
            ar = a[None, r0:r1]
            br = b[None, r0:r1]
            yr = y[None, r0:r1]
            for c0 in range(0, d, tile_c):
                c1 = min(c0 + tile_c, d)
                h = block[: c1 - c0, :w]
                q = scratch[: c1 - c0, :w]
                eq = match[: c1 - c0, :w]
                t0 = _thread_clock()
                # h = ((a·x + b) mod p) mod g, entirely in scratch:
                np.multiply(x[c0:c1, None], ar, out=h)
                np.add(h, br, out=h)
                _mersenne_reduce_into(h, q, eq)
                _apply_mod_into(h, self._g, self._magic, self._shift, q)
                t1 = _thread_clock()
                np.equal(h, yr, out=eq)
                counts[c0:c1] += eq.sum(axis=1)
                t2 = _thread_clock()
                hash_s += t1 - t0
                acc_s += t2 - t1
                tiles += 1
        if timing is not None:
            timing.add(
                hash_s, acc_s, worker=_current_worker_slot(), tiles=tiles
            )
        return counts


# ---------------------------------------------------------------------------
# Hadamard candidate decoding (bit-sliced)
# ---------------------------------------------------------------------------

#: Default report-segment length for the bit-sliced decode.  Dots are
#: additive over report segments, so segmenting bounds the packed-plane
#: footprint (≤ 64 planes × seg/64 words ≈ 8 MB at the default) without
#: changing a single output bit.
_HAD_SEGMENT_REPORTS = 1 << 20


class HadamardCandidatePlan:
    """Candidate-side plan for the bit-sliced Hadamard decode.

    Precomputes, per candidate set: the union of index bits any
    candidate inspects (``bit_positions``) and, for each such bit, the
    boolean mask of candidates that have it set (``bit_masks``) — the
    XOR-selection table of the decode loop.  Arrays are read-only and
    the plan holds no scratch, so instances cache and share safely
    (:data:`kernel_plan_cache`).
    """

    def __init__(self, candidates: np.ndarray) -> None:
        cand = np.ascontiguousarray(candidates, dtype=np.uint64)
        if cand.ndim != 1:
            raise ValueError(f"candidates must be 1-D, got shape {cand.shape}")
        if cand is candidates or np.shares_memory(cand, candidates):
            cand = cand.copy()
        cand.setflags(write=False)
        self.candidates = cand
        union = int(np.bitwise_or.reduce(cand)) if cand.size else 0
        self.bit_positions = tuple(
            t for t in range(64) if (union >> t) & 1
        )
        shifts = np.array(self.bit_positions, dtype=np.uint64)
        masks = (
            (cand[None, :] >> shifts[:, None]) & np.uint64(1)
        ).astype(bool)
        masks.setflags(write=False)
        self.bit_masks = masks  # (num bits, num candidates)

    @property
    def num_candidates(self) -> int:
        return int(self.candidates.shape[0])


def hadamard_support_counts(
    indices: np.ndarray,
    bits: np.ndarray,
    candidates: np.ndarray | HadamardCandidatePlan,
    *,
    tile_reports: int = _HAD_SEGMENT_REPORTS,
) -> np.ndarray:
    """Per-candidate Hadamard support counts, bit-sliced and integer-exact.

    ``C_v = n/2 + ½ Σ_i b_i·H[j_i, v]`` with ``H[j, v] = (−1)^popcount(j & v)``.
    Instead of materializing parities and contracting with an int64
    matmul (the previous tier, kept as
    :func:`_matmul_hadamard_support_counts`), the kernel bit-slices:

    1. Pack bit-plane ``t`` of the report indices into uint64 words —
       64 reports per word (:func:`repro.util.wht.pack_bit_planes`),
       only for bits some candidate actually inspects.
    2. For each candidate ``v``, ``parity_i = popcount(j_i & v) mod 2``
       is the XOR of the planes of ``v``'s set bits — one masked
       ``bitwise_xor`` per active bit per candidate block.
    3. With ``pos`` the packed mask of ``b_i = +1`` reports and
       ``sum_b = Σ b_i``, two ``np.bitwise_count`` popcounts finish the
       signed dot: ``Σ b_i·H[j_i, v] = sum_b − 4·popcount(parity ∧ pos)
       + 2·popcount(parity)``.

    Everything is integer arithmetic on word-packed lanes; the dot
    values are integers with magnitude ≤ n < 2⁵³, so the final float
    expression is bit-identical to the reference's per-candidate float
    dot (and to the retained matmul tier).  Dots are additive over
    report segments, so ``tile_reports`` bounds peak memory without
    affecting output.

    ``candidates`` may be a raw array or a prebuilt (possibly cached)
    :class:`HadamardCandidatePlan`.
    """
    idx = np.ascontiguousarray(indices, dtype=np.uint64)
    signed_bits = np.ascontiguousarray(bits, dtype=np.int64)
    if idx.shape != signed_bits.shape or idx.ndim != 1:
        raise ValueError("indices and bits must be aligned 1-D arrays")
    if isinstance(candidates, HadamardCandidatePlan):
        plan = candidates
    else:
        plan = HadamardCandidatePlan(candidates)
    n = idx.shape[0]
    d = plan.num_candidates
    dots = np.zeros(d, dtype=np.int64)
    if n and d:
        timing = _active_timing()
        hash_s = 0.0
        acc_s = 0.0
        tiles = 0
        seg_len = max(1, int(tile_reports))
        for s0 in range(0, n, seg_len):
            s1 = min(s0 + seg_len, n)
            h_s, a_s, t_s = _bitsliced_segment(
                idx[s0:s1], signed_bits[s0:s1], plan, dots
            )
            hash_s += h_s
            acc_s += a_s
            tiles += t_s
        if timing is not None:
            timing.add(
                hash_s, acc_s, worker=_current_worker_slot(), tiles=tiles
            )
    return n / 2.0 + 0.5 * dots.astype(np.float64)


def _bitsliced_segment(
    idx: np.ndarray,
    signed_bits: np.ndarray,
    plan: HadamardCandidatePlan,
    dots: np.ndarray,
) -> tuple[float, float, int]:
    """Accumulate one report segment's signed dots into ``dots``.

    Returns (hash seconds, accumulate seconds, tile count).  The *hash*
    stage is the transform side — plane packing and the sign mask; the
    *accumulate* stage is the XOR/popcount contraction.
    """
    n = idx.shape[0]
    d = plan.num_candidates
    t0 = _thread_clock()
    # Bits no report in this segment has set contribute parity 0 for
    # every candidate: skip their planes entirely.
    seg_union = int(np.bitwise_or.reduce(idx))
    used = [
        k for k, t in enumerate(plan.bit_positions) if (seg_union >> t) & 1
    ]
    num_pos = int((signed_bits > 0).sum())
    sum_b = 2 * num_pos - n
    if not used:
        # Every active parity is even: H contributes +1 throughout.
        dots += sum_b
        return _thread_clock() - t0, 0.0, 1
    pos = pack_sign_mask(signed_bits > 0)
    planes = pack_bit_planes(idx, [plan.bit_positions[k] for k in used])
    t1 = _thread_clock()
    words = planes.shape[1]
    tile_c = max(1, min(d, _TILE_CELLS // words))
    parity = _scratch_uint64("block", tile_c * words).reshape(tile_c, words)
    counted = _scratch_uint64("quotient", tile_c * words).reshape(
        tile_c, words
    )
    tiles = 0
    for c0 in range(0, d, tile_c):
        c1 = min(c0 + tile_c, d)
        par = parity[: c1 - c0]
        cnt = counted[: c1 - c0]
        par[:] = 0
        for j, k in enumerate(used):
            np.bitwise_xor(
                par,
                planes[j][None, :],
                out=par,
                where=plan.bit_masks[k, c0:c1, None],
            )
        np.bitwise_count(par, out=cnt)
        pc_all = cnt.sum(axis=1, dtype=np.int64)
        np.bitwise_and(par, pos[None, :], out=par)
        np.bitwise_count(par, out=par)
        pc_pos = par.sum(axis=1, dtype=np.int64)
        # Σ b_i·(1 − 2·parity_i) over the segment, per candidate.
        dots[c0:c1] += sum_b - 4 * pc_pos + 2 * pc_all
        tiles += 1
    return t1 - t0, _thread_clock() - t1, tiles


def _matmul_hadamard_support_counts(
    indices: np.ndarray,
    bits: np.ndarray,
    candidates: np.ndarray,
    *,
    tile_reports: int = _MAX_TILE_REPORTS,
) -> np.ndarray:
    """The previous kernel tier: popcount-parity tiles + int64 matmul.

    Retained as the mid-tier comparison point for the E18 bit-sliced
    sweep (it is itself bit-identical to the per-candidate reference,
    which stays on the oracle as ``_reference_support_counts_for``).
    """
    idx = np.ascontiguousarray(indices, dtype=np.uint64)
    cand = np.ascontiguousarray(candidates, dtype=np.uint64)
    signed_bits = np.ascontiguousarray(bits, dtype=np.int64)
    if idx.shape != signed_bits.shape or idx.ndim != 1:
        raise ValueError("indices and bits must be aligned 1-D arrays")
    n = idx.shape[0]
    d = cand.shape[0]
    dots = np.zeros(d, dtype=np.int64)
    if n and d:
        timing = _active_timing()
        hash_s = 0.0
        acc_s = 0.0
        tile_c = min(d, 4096)
        tile_r = max(1, min(tile_reports, n, _TILE_CELLS // tile_c))
        block = np.empty((tile_r, tile_c), dtype=np.uint64)
        parity = np.empty(block.shape, dtype=np.int64)
        for r0 in range(0, n, tile_r):
            r1 = min(r0 + tile_r, n)
            w = r1 - r0
            seg = signed_bits[r0:r1]
            seg_total = seg.sum()
            for c0 in range(0, d, tile_c):
                c1 = min(c0 + tile_c, d)
                t0 = _thread_clock()
                b_blk = block[:w, : c1 - c0]
                np.bitwise_and(idx[r0:r1, None], cand[None, c0:c1], out=b_blk)
                np.bitwise_count(b_blk, out=b_blk)
                np.bitwise_and(b_blk, np.uint64(1), out=b_blk)
                p_blk = parity[:w, : c1 - c0]
                np.copyto(p_blk, b_blk, casting="unsafe")
                t1 = _thread_clock()
                # Σ b_i·(1 − 2·parity) = Σ b_i − 2·(b @ parity)
                dots[c0:c1] += seg_total - 2 * (seg @ p_blk)
                t2 = _thread_clock()
                hash_s += t1 - t0
                acc_s += t2 - t1
        if timing is not None:
            timing.add(hash_s, acc_s)
    return n / 2.0 + 0.5 * dots.astype(np.float64)


# ---------------------------------------------------------------------------
# dense unary support counting
# ---------------------------------------------------------------------------


def column_support_counts(
    reports: np.ndarray, *, tile_rows: int = 1 << 15
) -> np.ndarray:
    """Column sums of a dense 0/1 report matrix, accumulated in int64.

    The unary (SUE/OUE) support path: summing uint8 rows into an int64
    accumulator tile by tile avoids the per-element float64 conversion
    of ``arr.sum(axis=0, dtype=float64)`` while producing exactly the
    same integers (counts ≤ n < 2⁵³).
    """
    arr = np.asarray(reports)
    if arr.ndim != 2:
        raise ValueError(f"reports must be 2-D, got shape {arr.shape}")
    timing = _active_timing()
    t0 = _thread_clock()
    counts = np.zeros(arr.shape[1], dtype=np.int64)
    for r0 in range(0, arr.shape[0], tile_rows):
        counts += arr[r0 : r0 + tile_rows].sum(axis=0, dtype=np.int64)
    if timing is not None:
        timing.add(0.0, _thread_clock() - t0)
    return counts.astype(np.float64)
