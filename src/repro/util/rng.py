"""Deterministic randomness plumbing.

All stochastic code in the library draws from ``numpy.random.Generator``
instances created here.  Experiments pass an integer seed at the top and
every client, mechanism and round derives an independent child stream via
``numpy``'s SeedSequence spawning, so whole experiment tables are
bit-reproducible while remaining statistically independent across
components.

The tutorial's deployed systems (notably Microsoft's telemetry collection
[10]) rely on *persistent per-user randomness* — a user must re-use the
same random draw across rounds to avoid privacy erosion.  ``per_user_seeds``
provides exactly that: a stable 64-bit seed per user id from which a user
can rebuild their private generator in any round.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

__all__ = [
    "ensure_generator",
    "spawn",
    "spawn_many",
    "per_user_seeds",
    "derive_seed",
]

_DERIVE_MIX = 0x9E3779B97F4A7C15  # golden-ratio odd constant for seed mixing


def ensure_generator(
    rng: np.random.Generator | int | None,
) -> np.random.Generator:
    """Return a Generator from a Generator, an int seed, or None (fresh).

    .. warning::
        Never pass the *same* integer seed to a workload generator and to
        a mechanism operating on that workload's output.  Both would
        replay the identical underlying stream, so e.g. a group-split
        mask ``u < fraction`` can land exactly on the users whose data
        was produced by the same small uniforms — a silently catastrophic
        correlation.  Use distinct seeds, or :func:`derive_seed` to fan a
        master seed out into decorrelated components.
    """
    if isinstance(rng, np.random.Generator):
        return rng
    if rng is None:
        return np.random.default_rng()
    if isinstance(rng, bool) or not isinstance(rng, (int, np.integer)):
        raise TypeError(
            f"rng must be a numpy Generator, int seed, or None; got {type(rng).__name__}"
        )
    return np.random.default_rng(int(rng))


def spawn(rng: np.random.Generator) -> np.random.Generator:
    """Derive a single statistically independent child generator."""
    return spawn_many(rng, 1)[0]


def spawn_many(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Derive ``n`` statistically independent child generators.

    Uses the generator itself to produce child seeds, so spawning is
    deterministic given the parent's state.
    """
    if n < 0:
        raise ValueError(f"n must be >= 0, got {n}")
    seeds = rng.integers(0, 2**63 - 1, size=n, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def per_user_seeds(master_seed: int, n_users: int) -> np.ndarray:
    """Stable 64-bit seed per user id, derived from a master seed.

    The mapping is a fixed bijective mix of ``(master_seed, user_id)`` so a
    user can re-derive their personal seed in any collection round — the
    memoization primitive Microsoft's system depends on.
    """
    if n_users < 0:
        raise ValueError(f"n_users must be >= 0, got {n_users}")
    uids = np.arange(n_users, dtype=np.uint64)
    mixed = (uids + np.uint64(master_seed & (2**64 - 1))) * np.uint64(_DERIVE_MIX)
    mixed ^= mixed >> np.uint64(31)
    mixed *= np.uint64(0xBF58476D1CE4E5B9)
    mixed ^= mixed >> np.uint64(27)
    return mixed.astype(np.uint64)


def derive_seed(master_seed: int, *components: int) -> int:
    """Deterministically derive a 63-bit seed from a master seed and tags.

    Used to key shared randomness (e.g. the public hash functions of a CMS
    sketch, or a cohort's Bloom hash family) off one experiment seed.
    Arithmetic is plain Python ints masked to 64 bits (wrap-around by
    construction, no numpy overflow warnings).
    """
    mask = 2**64 - 1
    acc = int(master_seed) & mask
    for comp in components:
        acc ^= int(comp) & mask
        acc = (acc * _DERIVE_MIX) & mask
        acc ^= acc >> 29
        acc = (acc * 0x94D049BB133111EB) & mask
        acc ^= acc >> 32
    return acc & (2**63 - 1)


def generators_for(seeds: Iterable[int]) -> list[np.random.Generator]:
    """Build one Generator per seed."""
    return [np.random.default_rng(int(s)) for s in seeds]
