"""Shared argument validation for the repro library.

Every public constructor and entry point validates its inputs through the
helpers in this module so that misuse fails loudly with a uniform error
style instead of propagating NaNs or silently mis-estimating.  The tutorial
the library reproduces stresses that deployed LDP systems are *systems*:
bad client input must be rejected at the boundary, not averaged into the
population estimate.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

__all__ = [
    "check_epsilon",
    "check_delta",
    "check_probability",
    "check_positive_int",
    "check_nonnegative_int",
    "check_in_range",
    "check_domain_values",
    "check_fraction",
    "as_value_array",
]


def check_epsilon(epsilon: float, *, name: str = "epsilon") -> float:
    """Validate a privacy parameter: finite and strictly positive.

    Returns the value as a float so callers can pass ints freely.
    """
    if not isinstance(epsilon, (int, float)) or isinstance(epsilon, bool):
        raise TypeError(f"{name} must be a real number, got {type(epsilon).__name__}")
    eps = float(epsilon)
    if math.isnan(eps) or math.isinf(eps):
        raise ValueError(f"{name} must be finite, got {eps}")
    if eps <= 0.0:
        raise ValueError(f"{name} must be > 0, got {eps}")
    return eps


def check_delta(delta: float, *, name: str = "delta") -> float:
    """Validate a DP failure probability: in [0, 1)."""
    if not isinstance(delta, (int, float)) or isinstance(delta, bool):
        raise TypeError(f"{name} must be a real number, got {type(delta).__name__}")
    d = float(delta)
    if math.isnan(d):
        raise ValueError(f"{name} must not be NaN")
    if not 0.0 <= d < 1.0:
        raise ValueError(f"{name} must be in [0, 1), got {d}")
    return d


def check_probability(p: float, *, name: str = "p") -> float:
    """Validate a probability: in [0, 1]."""
    if not isinstance(p, (int, float)) or isinstance(p, bool):
        raise TypeError(f"{name} must be a real number, got {type(p).__name__}")
    prob = float(p)
    if math.isnan(prob) or not 0.0 <= prob <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {prob}")
    return prob


def check_positive_int(value: int, *, name: str = "value") -> int:
    """Validate a strictly positive integer (bools rejected)."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    v = int(value)
    if v <= 0:
        raise ValueError(f"{name} must be >= 1, got {v}")
    return v


def check_nonnegative_int(value: int, *, name: str = "value") -> int:
    """Validate a non-negative integer (bools rejected)."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an int, got {type(value).__name__}")
    v = int(value)
    if v < 0:
        raise ValueError(f"{name} must be >= 0, got {v}")
    return v


def check_in_range(
    value: float,
    low: float,
    high: float,
    *,
    name: str = "value",
    inclusive: bool = True,
) -> float:
    """Validate that ``value`` lies in ``[low, high]`` (or ``(low, high)``)."""
    if not isinstance(value, (int, float, np.integer, np.floating)) or isinstance(
        value, bool
    ):
        raise TypeError(f"{name} must be a real number, got {type(value).__name__}")
    v = float(value)
    if math.isnan(v):
        raise ValueError(f"{name} must not be NaN")
    if inclusive:
        if not low <= v <= high:
            raise ValueError(f"{name} must be in [{low}, {high}], got {v}")
    else:
        if not low < v < high:
            raise ValueError(f"{name} must be in ({low}, {high}), got {v}")
    return v


def check_fraction(value: float, *, name: str = "fraction") -> float:
    """Validate a fraction in [0, 1]."""
    return check_in_range(value, 0.0, 1.0, name=name)


def check_domain_values(
    values: Sequence[int] | np.ndarray, domain_size: int, *, name: str = "values"
) -> np.ndarray:
    """Validate and coerce raw user values into an int64 array in [0, d).

    This is the boundary between untrusted client input and the estimation
    pipeline: anything outside the registered domain raises.
    """
    arr = np.asarray(values)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.issubdtype(arr.dtype, np.integer):
        if np.issubdtype(arr.dtype, np.floating) and np.all(arr == np.floor(arr)):
            arr = arr.astype(np.int64)
        else:
            raise TypeError(f"{name} must contain integers, got dtype {arr.dtype}")
    arr = arr.astype(np.int64, copy=False)
    if arr.min() < 0 or arr.max() >= domain_size:
        bad = arr[(arr < 0) | (arr >= domain_size)][0]
        raise ValueError(
            f"{name} must lie in [0, {domain_size}), found out-of-domain value {bad}"
        )
    return arr


def as_value_array(values: Sequence[float] | np.ndarray, *, name: str = "values") -> np.ndarray:
    """Coerce numeric user data into a 1-D float64 array, rejecting NaN/inf."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be one-dimensional, got shape {arr.shape}")
    if arr.size == 0:
        raise ValueError(f"{name} must be non-empty")
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must be finite (no NaN/inf)")
    return arr
