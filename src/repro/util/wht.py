"""Fast Walsh-Hadamard transform and pointwise Hadamard evaluation.

Apple's LDP system spreads each user's signal across the domain with "the
Fourier transform" [1, 9] — concretely the Walsh-Hadamard transform over
the Boolean hypercube.  The same transform underlies the Hadamard response
frequency oracle and the Fourier approach to marginal release [8], so it
lives here in the shared substrate.

The (unnormalized) Hadamard matrix of order ``d = 2^t`` is::

    H[i, j] = (-1)^{popcount(i & j)}

and satisfies ``H @ H = d * I``.  ``fwht`` applies ``H`` in ``O(d log d)``
with the standard in-place butterfly; ``hadamard_entries`` evaluates single
entries without materializing anything, which is what clients need (a
client touches one row, never the matrix).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "is_power_of_two",
    "next_power_of_two",
    "fwht",
    "hadamard_entries",
    "hadamard_row",
]


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n >= 1 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two ``>= n`` (``n >= 1``)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 1 << (int(n - 1).bit_length())


def fwht(x: np.ndarray) -> np.ndarray:
    """Unnormalized fast Walsh-Hadamard transform along the last axis.

    Input length must be a power of two.  Returns a new float64 array;
    applying ``fwht`` twice multiplies by the length (``H @ H = d I``).
    """
    arr = np.asarray(x, dtype=np.float64)
    d = arr.shape[-1]
    if not is_power_of_two(d):
        raise ValueError(f"fwht length must be a power of two, got {d}")
    out = arr.copy()
    h = 1
    while h < d:
        # Reshape so paired butterflies vectorize across all leading axes.
        shape = out.shape[:-1] + (d // (2 * h), 2, h)
        view = out.reshape(shape)
        a = view[..., 0, :].copy()
        b = view[..., 1, :].copy()
        view[..., 0, :] = a + b
        view[..., 1, :] = a - b
        h *= 2
    return out


def hadamard_entries(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Evaluate ``H[rows, cols] = (-1)^{popcount(rows & cols)}`` elementwise.

    ``rows`` and ``cols`` broadcast against each other; the result is a
    float64 array of ±1.  No bound checking is needed beyond non-negativity
    because the formula is valid for any index pair within the same
    power-of-two order.
    """
    r = np.asarray(rows, dtype=np.uint64)
    c = np.asarray(cols, dtype=np.uint64)
    bits = np.bitwise_count(r & c).astype(np.int64)
    return np.where(bits % 2 == 0, 1.0, -1.0)


def hadamard_row(index: int, d: int) -> np.ndarray:
    """Materialize one row of the order-``d`` Hadamard matrix (±1 floats)."""
    if not is_power_of_two(d):
        raise ValueError(f"d must be a power of two, got {d}")
    if not 0 <= index < d:
        raise IndexError(f"row index {index} out of range [0, {d})")
    return hadamard_entries(np.uint64(index), np.arange(d, dtype=np.uint64))
