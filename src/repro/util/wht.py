"""Fast Walsh-Hadamard transform and pointwise Hadamard evaluation.

Apple's LDP system spreads each user's signal across the domain with "the
Fourier transform" [1, 9] — concretely the Walsh-Hadamard transform over
the Boolean hypercube.  The same transform underlies the Hadamard response
frequency oracle and the Fourier approach to marginal release [8], so it
lives here in the shared substrate.

The (unnormalized) Hadamard matrix of order ``d = 2^t`` is::

    H[i, j] = (-1)^{popcount(i & j)}

and satisfies ``H @ H = d * I``.  ``fwht`` applies ``H`` in ``O(d log d)``
with the standard in-place butterfly; ``hadamard_entries`` evaluates single
entries without materializing anything, which is what clients need (a
client touches one row, never the matrix).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "is_power_of_two",
    "next_power_of_two",
    "fwht",
    "hadamard_entries",
    "hadamard_row",
    "pack_bit_planes",
    "pack_sign_mask",
]


def is_power_of_two(n: int) -> bool:
    """True iff ``n`` is a positive power of two."""
    return n >= 1 and (n & (n - 1)) == 0


def next_power_of_two(n: int) -> int:
    """Smallest power of two ``>= n`` (``n >= 1``)."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    return 1 << (int(n - 1).bit_length())


def fwht(x: np.ndarray) -> np.ndarray:
    """Unnormalized fast Walsh-Hadamard transform along the last axis.

    Input length must be a power of two.  Returns a new float64 array;
    applying ``fwht`` twice multiplies by the length (``H @ H = d I``).
    """
    arr = np.asarray(x, dtype=np.float64)
    d = arr.shape[-1]
    if not is_power_of_two(d):
        raise ValueError(f"fwht length must be a power of two, got {d}")
    out = arr.copy()
    h = 1
    while h < d:
        # Reshape so paired butterflies vectorize across all leading axes.
        shape = out.shape[:-1] + (d // (2 * h), 2, h)
        view = out.reshape(shape)
        a = view[..., 0, :].copy()
        b = view[..., 1, :].copy()
        view[..., 0, :] = a + b
        view[..., 1, :] = a - b
        h *= 2
    return out


def hadamard_entries(rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """Evaluate ``H[rows, cols] = (-1)^{popcount(rows & cols)}`` elementwise.

    ``rows`` and ``cols`` broadcast against each other; the result is a
    float64 array of ±1.  No bound checking is needed beyond non-negativity
    because the formula is valid for any index pair within the same
    power-of-two order.
    """
    r = np.asarray(rows, dtype=np.uint64)
    c = np.asarray(cols, dtype=np.uint64)
    bits = np.bitwise_count(r & c).astype(np.int64)
    return np.where(bits % 2 == 0, 1.0, -1.0)


#: Reports packed per machine word by the bit-sliced decode layout.
_WORD_BITS = 64
#: Segment length for plane extraction: small enough that the per-bit
#: uint64/uint8 staging buffers stay cache-resident, large enough to
#: amortize the per-segment Python overhead.  Must be a multiple of 8 so
#: segment boundaries land on byte boundaries of the packed output.
_PACK_SEGMENT = 1 << 16


def pack_bit_planes(values: np.ndarray, bit_positions) -> np.ndarray:
    """Pack selected bit-planes of ``values`` into machine words.

    Returns a ``(len(bit_positions), ceil(n/64))`` uint64 array whose row
    ``k`` holds bit ``bit_positions[k]`` of every value, one value per
    bit, padded with zeros past ``n``.  Word-internal bit order is an
    implementation detail: consumers only combine planes positionally
    (XOR/AND) and take popcounts, both of which are position-independent,
    so any consistent packing (here: little-endian within bytes) yields
    identical results.

    This is the transform side of the bit-sliced Hadamard decode: the
    parity ``popcount(j & v) mod 2`` of report index ``j`` against
    candidate ``v`` is the XOR of the planes of ``j``'s bits selected by
    ``v`` — 64 reports per word operation instead of one.

    Extraction is segmented through two small staging buffers so the
    temporaries never scale with ``n`` (population-scale batches stream
    through cache-sized windows).
    """
    x = np.ascontiguousarray(values, dtype=np.uint64)
    if x.ndim != 1:
        raise ValueError(f"values must be 1-D, got shape {x.shape}")
    n = x.shape[0]
    words = (n + _WORD_BITS - 1) // _WORD_BITS
    planes8 = np.zeros((max(1, len(bit_positions)), words * 8), dtype=np.uint8)
    if n:
        stage = min(_PACK_SEGMENT, ((n + 7) // 8) * 8)
        tmp64 = np.empty(stage, dtype=np.uint64)
        tmp8 = np.empty(stage, dtype=np.uint8)
        one = np.uint64(1)
        for s0 in range(0, n, _PACK_SEGMENT):
            s1 = min(s0 + _PACK_SEGMENT, n)
            w = s1 - s0
            byte0 = s0 // 8
            for k, t in enumerate(bit_positions):
                np.right_shift(x[s0:s1], np.uint64(t), out=tmp64[:w])
                np.bitwise_and(tmp64[:w], one, out=tmp64[:w])
                np.copyto(tmp8[:w], tmp64[:w], casting="unsafe")
                packed = np.packbits(tmp8[:w], bitorder="little")
                planes8[k, byte0 : byte0 + packed.shape[0]] = packed
    return planes8[: len(bit_positions)].view(np.uint64)


def pack_sign_mask(mask: np.ndarray) -> np.ndarray:
    """Pack a boolean vector into ``ceil(n/64)`` uint64 words (zero padded).

    Companion of :func:`pack_bit_planes` with the same word layout: used
    by the bit-sliced decode to pack the ``b_i = +1`` report positions so
    ``popcount(parity & mask)`` counts positive-bit reports whose parity
    is odd, 64 at a time.
    """
    m = np.ascontiguousarray(mask, dtype=bool)
    if m.ndim != 1:
        raise ValueError(f"mask must be 1-D, got shape {m.shape}")
    words = (m.shape[0] + _WORD_BITS - 1) // _WORD_BITS
    buf = np.zeros(max(1, words) * 8, dtype=np.uint8)
    packed = np.packbits(m, bitorder="little")
    buf[: packed.shape[0]] = packed
    out = buf.view(np.uint64)
    return out[:words] if words else out[:0]


def hadamard_row(index: int, d: int) -> np.ndarray:
    """Materialize one row of the order-``d`` Hadamard matrix (±1 floats)."""
    if not is_power_of_two(d):
        raise ValueError(f"d must be a power of two, got {d}")
    if not 0 <= index < d:
        raise IndexError(f"row index {index} out of range [0, {d})")
    return hadamard_entries(np.uint64(index), np.arange(d, dtype=np.uint64))
