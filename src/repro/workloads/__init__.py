"""Synthetic workload generators for every experiment domain."""

from repro.workloads.binary import (
    correlated_binary,
    independent_binary,
    pack_bits,
    unpack_bits,
)
from repro.workloads.categorical import (
    geometric_frequencies,
    sample_from_frequencies,
    sample_zipf,
    true_counts,
    uniform_frequencies,
    zipf_frequencies,
)
from repro.workloads.graphs import powerlaw_graph, sbm_graph
from repro.workloads.spatial import Hotspot, spatial_mixture, true_cell_counts
from repro.workloads.telemetry import telemetry_trajectories

__all__ = [
    "correlated_binary",
    "independent_binary",
    "pack_bits",
    "unpack_bits",
    "geometric_frequencies",
    "sample_from_frequencies",
    "sample_zipf",
    "true_counts",
    "uniform_frequencies",
    "zipf_frequencies",
    "powerlaw_graph",
    "sbm_graph",
    "Hotspot",
    "spatial_mixture",
    "true_cell_counts",
    "telemetry_trajectories",
]
