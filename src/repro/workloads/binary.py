"""Multidimensional binary records for the marginal-release experiments.

The marginal experiments need populations of ``d``-bit attribute vectors
with *real correlation structure* — independent bits would make every
marginal a product of singletons and hide reconstruction error.  The
generator here uses a latent-factor threshold model: each user draws a
low-dimensional Gaussian factor, each attribute thresholds its own
loading of it plus noise.  Nearby attributes share loadings, producing
the positively-correlated blocks typical of survey/telemetry data.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import ensure_generator
from repro.util.validation import check_positive_int

__all__ = ["correlated_binary", "independent_binary", "pack_bits", "unpack_bits"]


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack an ``(n, d)`` 0/1 matrix into integers (bit ``i`` = column i)."""
    arr = np.asarray(bits)
    if arr.ndim != 2:
        raise ValueError(f"bits must be 2-D, got shape {arr.shape}")
    if arr.shape[1] > 62:
        raise ValueError("at most 62 attributes fit in int64 packing")
    weights = (1 << np.arange(arr.shape[1], dtype=np.int64))
    return (arr.astype(np.int64) * weights).sum(axis=1)


def unpack_bits(packed: np.ndarray, d: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: ``(n, d)`` 0/1 matrix."""
    check_positive_int(d, name="d")
    arr = np.asarray(packed, dtype=np.int64)
    return ((arr[:, None] >> np.arange(d, dtype=np.int64)) & 1).astype(np.uint8)


def independent_binary(
    n: int,
    d: int,
    *,
    ones_probability: float = 0.3,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """i.i.d. Bernoulli attributes, packed — the no-correlation baseline."""
    check_positive_int(n, name="n")
    check_positive_int(d, name="d")
    if not 0.0 < ones_probability < 1.0:
        raise ValueError("ones_probability must be in (0, 1)")
    gen = ensure_generator(rng)
    bits = (gen.random((n, d)) < ones_probability).astype(np.uint8)
    return pack_bits(bits)


def correlated_binary(
    n: int,
    d: int,
    *,
    num_factors: int = 2,
    loading: float = 1.0,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Correlated attribute vectors from a latent-factor threshold model.

    Attribute ``i`` loads on factor ``i mod num_factors`` with weight
    ``loading`` plus unit noise; larger ``loading`` means stronger
    within-block correlation.  Returns packed ints.
    """
    check_positive_int(n, name="n")
    check_positive_int(d, name="d")
    check_positive_int(num_factors, name="num_factors")
    if loading < 0:
        raise ValueError(f"loading must be >= 0, got {loading}")
    gen = ensure_generator(rng)
    factors = gen.normal(size=(n, num_factors))
    assignments = np.arange(d) % num_factors
    latent = factors[:, assignments] * loading + gen.normal(size=(n, d))
    # Per-attribute thresholds staggered so marginals are not all 50/50.
    thresholds = np.linspace(-0.8, 0.8, d)
    bits = (latent > thresholds[None, :]).astype(np.uint8)
    return pack_bits(bits)
