"""Categorical workload generators.

Every frequency-estimation experiment in the tutorial's surveyed systems
runs on skewed categorical data — web URLs, typed words, emoji — whose
defining property is a heavy head and long tail.  These generators
produce such populations with controlled shape:

* :func:`zipf_frequencies` / :func:`sample_zipf` — the default workload
  (RAPPOR's and Wang et al.'s evaluations both use Zipf-like synthetic
  distributions);
* :func:`geometric_frequencies` — sharper heads, for sketch stress tests;
* :func:`uniform_frequencies` — the worst case for heavy-hitter recall;
* :func:`sample_from_frequencies` — exact multinomial sampling from any
  frequency vector, plus the ground-truth counts experiments score
  against.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import ensure_generator
from repro.util.validation import check_positive_int

__all__ = [
    "zipf_frequencies",
    "geometric_frequencies",
    "uniform_frequencies",
    "sample_from_frequencies",
    "sample_zipf",
    "true_counts",
]


def zipf_frequencies(domain_size: int, exponent: float = 1.1) -> np.ndarray:
    """Normalized Zipf law ``f_v ∝ (v + 1)^{−s}`` over ``[0, d)``.

    Value 0 is the most popular item.  ``exponent`` ≈ 1.1 matches the web
    popularity distributions RAPPOR was designed for.
    """
    d = check_positive_int(domain_size, name="domain_size")
    if exponent <= 0:
        raise ValueError(f"exponent must be > 0, got {exponent}")
    ranks = np.arange(1, d + 1, dtype=np.float64)
    weights = ranks**-exponent
    return weights / weights.sum()


def geometric_frequencies(domain_size: int, ratio: float = 0.8) -> np.ndarray:
    """Normalized geometric decay ``f_v ∝ ratio^v`` — a very heavy head."""
    d = check_positive_int(domain_size, name="domain_size")
    if not 0.0 < ratio < 1.0:
        raise ValueError(f"ratio must be in (0, 1), got {ratio}")
    weights = ratio ** np.arange(d, dtype=np.float64)
    return weights / weights.sum()


def uniform_frequencies(domain_size: int) -> np.ndarray:
    """The flat distribution — no heavy hitters at all."""
    d = check_positive_int(domain_size, name="domain_size")
    return np.full(d, 1.0 / d)


def sample_from_frequencies(
    frequencies: np.ndarray,
    n: int,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Draw ``n`` user values i.i.d. from a frequency vector."""
    freqs = np.asarray(frequencies, dtype=np.float64)
    if freqs.ndim != 1 or freqs.size < 2:
        raise ValueError("frequencies must be a 1-D vector of length >= 2")
    if np.any(freqs < 0) or not np.isclose(freqs.sum(), 1.0, atol=1e-9):
        raise ValueError("frequencies must be non-negative and sum to 1")
    check_positive_int(n, name="n")
    gen = ensure_generator(rng)
    return gen.choice(freqs.size, size=n, p=freqs).astype(np.int64)


def sample_zipf(
    domain_size: int,
    n: int,
    exponent: float = 1.1,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Convenience: ``(values, frequencies)`` for a Zipf population."""
    freqs = zipf_frequencies(domain_size, exponent)
    values = sample_from_frequencies(freqs, n, rng)
    return values, freqs


def true_counts(values: np.ndarray, domain_size: int) -> np.ndarray:
    """Ground-truth per-value counts of a sampled population."""
    vals = np.asarray(values, dtype=np.int64)
    if vals.size and (vals.min() < 0 or vals.max() >= domain_size):
        raise ValueError("values outside domain")
    return np.bincount(vals, minlength=domain_size).astype(np.float64)
