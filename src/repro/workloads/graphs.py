"""Graph workloads: community-structured and power-law social graphs.

The graph-synthesis experiments need originals with known structure:
planted-partition (SBM) graphs for community preservation and power-law
(Barabási-Albert style via configuration model) graphs for degree-tail
preservation.  Both are generated through networkx with explicit seeds.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from repro.util.rng import ensure_generator
from repro.util.validation import check_positive_int

__all__ = ["sbm_graph", "powerlaw_graph"]


def sbm_graph(
    n: int,
    num_communities: int = 4,
    *,
    p_in: float = 0.08,
    p_out: float = 0.005,
    sizes: list[int] | None = None,
    rng: np.random.Generator | int | None = None,
) -> tuple[nx.Graph, np.ndarray]:
    """Planted-partition graph; returns ``(graph, community_labels)``.

    Nodes are relabelled 0..n−1 with community blocks contiguous.  By
    default communities have *heterogeneous* sizes (geometric-ish split),
    which gives them distinct expected degrees — the regime degree-vector
    methods like LDPGen can recover.  Pass explicit ``sizes`` to control
    this (equal sizes make the instance deliberately hard: all
    communities then share one expected degree).
    """
    check_positive_int(n, name="n")
    check_positive_int(num_communities, name="num_communities")
    if not 0.0 < p_in <= 1.0 or not 0.0 <= p_out <= 1.0:
        raise ValueError("p_in must be in (0,1], p_out in [0,1]")
    if p_out >= p_in:
        raise ValueError("p_out must be < p_in for planted structure")
    gen = ensure_generator(rng)
    if sizes is None:
        # Geometric-ish decay: community c gets weight (2/3)^c.
        weights = np.asarray(
            [(2.0 / 3.0) ** c for c in range(num_communities)]
        )
        raw = np.floor(n * weights / weights.sum()).astype(int)
        raw = np.maximum(raw, 2)
        raw[0] += n - int(raw.sum())
        sizes = [int(s) for s in raw]
    else:
        sizes = [int(s) for s in sizes]
        if sum(sizes) != n or len(sizes) != num_communities:
            raise ValueError("sizes must sum to n with one entry per community")
    probs = [
        [p_in if i == j else p_out for j in range(num_communities)]
        for i in range(num_communities)
    ]
    seed = int(gen.integers(0, 2**31 - 1))
    graph = nx.stochastic_block_model(sizes, probs, seed=seed)
    labels = np.concatenate(
        [np.full(size, c, dtype=np.int64) for c, size in enumerate(sizes)]
    )
    simple = nx.Graph()
    simple.add_nodes_from(range(n))
    simple.add_edges_from(graph.edges())
    return simple, labels


def powerlaw_graph(
    n: int,
    attachment: int = 3,
    *,
    rng: np.random.Generator | int | None = None,
) -> nx.Graph:
    """Barabási-Albert preferential-attachment graph (heavy degree tail)."""
    check_positive_int(n, name="n")
    check_positive_int(attachment, name="attachment")
    if attachment >= n:
        raise ValueError("attachment must be < n")
    gen = ensure_generator(rng)
    seed = int(gen.integers(0, 2**31 - 1))
    graph = nx.barabasi_albert_graph(n, attachment, seed=seed)
    relabelled = nx.Graph()
    relabelled.add_nodes_from(range(n))
    relabelled.add_edges_from(graph.edges())
    return relabelled
