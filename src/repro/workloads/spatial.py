"""Spatial point-cloud generators with planted hotspots.

Location experiments need populations whose density is known exactly:
a mixture of Gaussian "hotspots" over a uniform background in the unit
square.  The generator returns both the points and the mixture, so
experiments can compute true range-query answers and true hotspot cells
analytically or empirically.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.rng import ensure_generator
from repro.util.validation import check_fraction, check_positive_int

__all__ = ["Hotspot", "spatial_mixture", "true_cell_counts"]


@dataclass(frozen=True)
class Hotspot:
    """One Gaussian cluster: center, scale, and share of the population."""

    x: float
    y: float
    scale: float
    weight: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.x <= 1.0 and 0.0 <= self.y <= 1.0):
            raise ValueError("hotspot center must lie in the unit square")
        if self.scale <= 0:
            raise ValueError("scale must be > 0")
        check_fraction(self.weight, name="weight")


def spatial_mixture(
    n: int,
    hotspots: list[Hotspot] | None = None,
    *,
    background_fraction: float = 0.2,
    rng: np.random.Generator | int | None = None,
) -> tuple[np.ndarray, list[Hotspot]]:
    """Sample ``n`` points: Gaussian hotspots plus a uniform background.

    Default hotspots model two cities and a suburb.  Points are clipped
    into the unit square (reflection would distort densities near the
    planted centers more).  Returns ``(points, hotspots)``.
    """
    check_positive_int(n, name="n")
    check_fraction(background_fraction, name="background_fraction")
    gen = ensure_generator(rng)
    if hotspots is None:
        hotspots = [
            Hotspot(0.25, 0.70, 0.04, 0.45),
            Hotspot(0.70, 0.30, 0.05, 0.35),
            Hotspot(0.55, 0.80, 0.03, 0.20),
        ]
    weights = np.asarray([h.weight for h in hotspots], dtype=np.float64)
    if weights.sum() <= 0:
        raise ValueError("hotspot weights must have positive mass")
    weights = weights / weights.sum() * (1.0 - background_fraction)

    points = np.empty((n, 2))
    u = gen.random(n)
    background = u < background_fraction
    n_bg = int(background.sum())
    points[background] = gen.random((n_bg, 2))
    remaining = ~background
    cumulative = background_fraction + np.cumsum(weights)
    assigned = np.full(n, -1, dtype=np.int64)
    for idx in range(len(hotspots)):
        low = background_fraction if idx == 0 else cumulative[idx - 1]
        members = remaining & (u >= low) & (u < cumulative[idx])
        assigned[members] = idx
        k = int(members.sum())
        h = hotspots[idx]
        pts = gen.normal([h.x, h.y], h.scale, size=(k, 2))
        points[members] = np.clip(pts, 0.0, 1.0)
    # Numerical tail (u ≈ 1): assign to the last hotspot.
    stragglers = remaining & (assigned == -1)
    k = int(stragglers.sum())
    if k:
        h = hotspots[-1]
        points[stragglers] = np.clip(
            gen.normal([h.x, h.y], h.scale, size=(k, 2)), 0.0, 1.0
        )
    return points, list(hotspots)


def true_cell_counts(points: np.ndarray, grid_size: int) -> np.ndarray:
    """Exact per-cell counts of a point cloud on a ``g × g`` grid."""
    check_positive_int(grid_size, name="grid_size")
    pts = np.asarray(points, dtype=np.float64)
    if pts.ndim != 2 or pts.shape[1] != 2:
        raise ValueError(f"points must have shape (n, 2), got {pts.shape}")
    g = grid_size
    xi = np.minimum((pts[:, 0] * g).astype(np.int64), g - 1)
    yi = np.minimum((pts[:, 1] * g).astype(np.int64), g - 1)
    cells = yi * g + xi
    return np.bincount(cells, minlength=g * g).astype(np.float64)
