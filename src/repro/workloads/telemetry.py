"""Telemetry trajectories: autocorrelated counters over rounds.

Microsoft's repeated-collection machinery only earns its keep on data
with *persistence* — app-usage counters that mostly stay put between
daily collections.  The generator produces an ``(n, T)`` matrix of
bounded counters following a clipped AR(1) random walk per user:

    x_{t+1} = clip(μ_u + φ (x_t − μ_u) + σ ξ_t, 0, m)

``φ`` near 1 means stable users (memoization barely ever re-rounds);
``φ = 0`` re-draws every round (memoization's worst case).  Experiment
E6 sweeps exactly this knob.
"""

from __future__ import annotations

import numpy as np

from repro.util.rng import ensure_generator
from repro.util.validation import check_fraction, check_positive_int

__all__ = ["telemetry_trajectories"]


def telemetry_trajectories(
    n: int,
    num_rounds: int,
    value_bound: float,
    *,
    persistence: float = 0.95,
    volatility: float = 0.05,
    rng: np.random.Generator | int | None = None,
) -> np.ndarray:
    """Sample ``(n, num_rounds)`` bounded AR(1) counter trajectories.

    Parameters
    ----------
    n, num_rounds:
        Population size and number of collection rounds.
    value_bound:
        Upper bound ``m``; values live in ``[0, m]``.
    persistence:
        AR(1) coefficient φ ∈ [0, 1] — how sticky each user's counter is.
    volatility:
        Innovation scale as a fraction of ``value_bound``.
    """
    check_positive_int(n, name="n")
    check_positive_int(num_rounds, name="num_rounds")
    if value_bound <= 0:
        raise ValueError(f"value_bound must be > 0, got {value_bound}")
    check_fraction(persistence, name="persistence")
    if volatility < 0:
        raise ValueError(f"volatility must be >= 0, got {volatility}")
    gen = ensure_generator(rng)
    m = float(value_bound)
    # Heterogeneous user baselines: a few heavy users, many light ones.
    mu = m * gen.beta(2.0, 5.0, size=n)
    out = np.empty((n, num_rounds))
    out[:, 0] = np.clip(mu + gen.normal(0.0, volatility * m, size=n), 0.0, m)
    for t in range(1, num_rounds):
        drift = mu + persistence * (out[:, t - 1] - mu)
        out[:, t] = np.clip(
            drift + gen.normal(0.0, volatility * m, size=n), 0.0, m
        )
    return out
