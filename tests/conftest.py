"""Shared fixtures: deterministic populations used across the suite.

Statistical tests use fixed seeds with tolerances expressed in analytical
standard deviations (typically 4-6σ), so pass/fail is deterministic given
the seeds and astronomically unlikely to have been a lucky draw.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.mechanism import HashedReports, IndexedBitReports
from repro.workloads import sample_zipf, true_counts


def _slice_reports(reports, mask):
    """Select a subset of users from any core report-batch type."""
    if isinstance(reports, HashedReports):
        return HashedReports(seeds=reports.seeds[mask], values=reports.values[mask])
    if isinstance(reports, IndexedBitReports):
        return IndexedBitReports(
            indices=reports.indices[mask], bits=reports.bits[mask]
        )
    return np.asarray(reports)[mask]


@pytest.fixture(scope="session")
def slice_reports():
    """Shared report-batch slicer for sharding/accumulator tests."""
    return _slice_reports


@pytest.fixture(scope="session")
def zipf_population() -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(values, frequencies, true_counts) for d=64, n=30k Zipf users."""
    values, freqs = sample_zipf(64, 30_000, exponent=1.1, rng=20240610)
    counts = true_counts(values, 64)
    return values, freqs, counts


@pytest.fixture(scope="session")
def small_population() -> tuple[np.ndarray, np.ndarray]:
    """(values, true_counts) for a quick d=16, n=5k population."""
    values, _ = sample_zipf(16, 5_000, exponent=1.2, rng=77)
    return values, true_counts(values, 16)
