"""The mergeable-accumulator layer: algebra, routing, guard rails.

The statistical behaviour of the estimates themselves is pinned by the
unbiasedness suite; these tests pin the *accumulator algebra* — that
absorb/merge/finalize is the one estimation code path, that merging any
sharding reproduces the batch API, and that incompatible merges are
rejected loudly.
"""

import numpy as np
import pytest

from repro.core import (
    ORACLE_REGISTRY,
    HadamardResponse,
    OptimalLocalHashing,
    OptimalUnaryEncoding,
    SummationHistogramEncoding,
    make_oracle,
)


@pytest.mark.parametrize("name", list(ORACLE_REGISTRY))
def test_single_absorb_matches_estimate_counts(name):
    oracle = make_oracle(name, 16, 1.0)
    values = np.arange(16).repeat(20)
    reports = oracle.privatize(values, rng=3)
    via_batch = oracle.estimate_counts(reports)
    acc = oracle.accumulator()
    via_acc = acc.absorb(reports).finalize()
    assert acc.n_absorbed == 320
    assert np.array_equal(via_batch, via_acc)


@pytest.mark.parametrize("name", list(ORACLE_REGISTRY))
def test_two_shard_merge_matches_batch(name, slice_reports):
    oracle = make_oracle(name, 12, 1.5)
    values = np.arange(12).repeat(25)
    reports = oracle.privatize(values, rng=5)
    whole = oracle.estimate_counts(reports)
    first = np.zeros(300, dtype=bool)
    first[:140] = True
    a = oracle.accumulator().absorb(slice_reports(reports, first))
    b = oracle.accumulator().absorb(slice_reports(reports, ~first))
    merged = a.merge(b).finalize()
    assert a.n_absorbed == 300
    # Bitwise for every oracle — SHE's accumulator sums exactly, so
    # even raw Laplace floats merge order-independently.
    assert np.array_equal(merged, whole)


def test_absorb_accumulates_incrementally():
    oracle = OptimalUnaryEncoding(8, 1.0)
    acc = oracle.accumulator()
    for seed in range(4):
        acc.absorb(oracle.privatize(np.arange(8).repeat(5), rng=seed))
    assert acc.n_absorbed == 160
    # Equivalent to one accumulator fed the concatenated batches.
    batches = [oracle.privatize(np.arange(8).repeat(5), rng=s) for s in range(4)]
    whole = oracle.estimate_counts(np.vstack(batches))
    assert np.array_equal(acc.finalize(), whole)


def test_empty_accumulator_finalizes_to_zero_counts():
    oracle = make_oracle("DE", 8, 1.0)
    counts = oracle.accumulator().finalize()
    assert counts.shape == (8,)
    assert np.allclose(counts, 0.0)


def test_merge_rejects_other_accumulator_types():
    de = make_oracle("DE", 8, 1.0)
    she = SummationHistogramEncoding(8, 1.0)
    with pytest.raises(TypeError):
        de.accumulator().merge(she.accumulator())


def test_merge_rejects_mismatched_configuration():
    a = OptimalUnaryEncoding(8, 1.0).accumulator()
    b = OptimalUnaryEncoding(8, 2.0).accumulator()
    with pytest.raises(ValueError):
        a.merge(b)
    wide = OptimalUnaryEncoding(16, 1.0).accumulator()
    with pytest.raises(ValueError):
        a.merge(wide)
    # SHE's float accumulator enforces the same configuration invariant.
    she_a = SummationHistogramEncoding(8, 0.5).accumulator()
    she_b = SummationHistogramEncoding(8, 8.0).accumulator()
    with pytest.raises(ValueError):
        she_a.merge(she_b)


def test_merge_rejects_mismatched_candidates():
    oracle = OptimalLocalHashing(16, 1.0)
    a = oracle.accumulator(np.asarray([1, 2, 3]))
    b = oracle.accumulator(np.asarray([1, 2, 4]))
    with pytest.raises(ValueError):
        a.merge(b)
    full = oracle.accumulator()
    with pytest.raises(ValueError):
        a.merge(full)


@pytest.mark.parametrize("name", ["OLH", "HR", "DE", "OUE"])
def test_candidate_restricted_accumulator_matches_full(name):
    oracle = make_oracle(name, 16, 1.0)
    values = np.arange(16).repeat(30)
    reports = oracle.privatize(values, rng=11)
    cands = np.asarray([0, 3, 7, 15])
    full = oracle.accumulator().absorb(reports).finalize()
    restricted = oracle.accumulator(cands).absorb(reports).finalize()
    assert restricted.shape == (4,)
    assert np.allclose(full[cands], restricted, atol=1e-6)


def test_hadamard_accumulator_merges_in_transform_domain(slice_reports):
    oracle = HadamardResponse(10, 1.2)
    values = np.arange(10).repeat(40)
    reports = oracle.privatize(values, rng=17)
    whole = oracle.estimate_counts(reports)
    shards = np.random.default_rng(0).integers(0, 5, size=400)
    accs = [
        oracle.accumulator().absorb(slice_reports(reports, shards == k))
        for k in range(5)
    ]
    merged = accs[0]
    for acc in accs[1:]:
        merged.merge(acc)
    assert np.array_equal(merged.finalize(), whole)


def test_support_view_is_read_only():
    oracle = OptimalUnaryEncoding(8, 1.0)
    acc = oracle.accumulator().absorb(oracle.privatize(np.arange(8), rng=1))
    with pytest.raises(ValueError):
        acc.support[0] = 99.0


def test_regression_support_snapshot_is_stable_under_later_absorbs():
    # `support` used to return a view of the live state: the "read-only"
    # array a caller held would silently change after later absorb/merge
    # calls.  It must be a snapshot.
    oracle = OptimalUnaryEncoding(8, 1.0)
    acc = oracle.accumulator().absorb(oracle.privatize(np.arange(8), rng=1))
    snapshot = acc.support
    frozen = snapshot.copy()
    acc.absorb(oracle.privatize(np.arange(8).repeat(3), rng=2))
    assert np.array_equal(snapshot, frozen)
    other = oracle.accumulator().absorb(oracle.privatize(np.arange(8), rng=3))
    acc.merge(other)
    assert np.array_equal(snapshot, frozen)
    assert not np.array_equal(acc.support, frozen)  # the state did move


def test_accumulator_copy_is_independent():
    oracle = OptimalLocalHashing(12, 1.4)
    reports = oracle.privatize(np.arange(12).repeat(10), rng=5)
    acc = oracle.accumulator().absorb(reports)
    baseline = acc.finalize()
    dup = acc.copy()
    assert np.array_equal(dup.finalize(), baseline)
    dup.absorb(oracle.privatize(np.arange(12), rng=6))
    assert dup.n_absorbed == 132
    assert acc.n_absorbed == 120
    assert np.array_equal(acc.finalize(), baseline)
