"""Unit tests for composition rules and the privacy ledger."""

import math

import pytest

from repro.core.budget import (
    BudgetExceededError,
    PrivacyLedger,
    PrivacySpend,
    SpendDeclaration,
    advanced_composition,
    compose_parallel,
    compose_sequential,
    optimal_per_round_epsilon,
)


class TestPrivacySpend:
    def test_valid(self):
        s = PrivacySpend(1.0, 1e-9, "q1")
        assert s.epsilon == 1.0

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ValueError):
            PrivacySpend(0.0)

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            PrivacySpend(1.0, delta=1.0)


class TestSequentialComposition:
    def test_sums(self):
        spends = [PrivacySpend(0.5), PrivacySpend(1.5, 1e-6)]
        eps, delta = compose_sequential(spends)
        assert eps == 2.0
        assert delta == 1e-6

    def test_empty(self):
        assert compose_sequential([]) == (0.0, 0.0)


class TestParallelComposition:
    def test_takes_max(self):
        spends = [PrivacySpend(0.5), PrivacySpend(1.5), PrivacySpend(1.0)]
        eps, delta = compose_parallel(spends)
        assert eps == 1.5
        assert delta == 0.0

    def test_empty(self):
        assert compose_parallel([]) == (0.0, 0.0)


class TestAdvancedComposition:
    def test_formula(self):
        eps, delta = advanced_composition(0.1, 0.0, 100, 1e-6)
        expected = 0.1 * math.sqrt(2 * 100 * math.log(1e6)) + 100 * 0.1 * (
            math.exp(0.1) - 1
        )
        assert math.isclose(eps, expected)
        assert math.isclose(delta, 1e-6)

    def test_beats_basic_for_many_rounds(self):
        k = 200
        eps_adv, _ = advanced_composition(0.05, 0.0, k, 1e-6)
        assert eps_adv < k * 0.05

    def test_worse_than_basic_for_few_rounds(self):
        eps_adv, _ = advanced_composition(1.0, 0.0, 2, 1e-6)
        assert eps_adv > 2.0

    def test_delta_accumulates(self):
        _, delta = advanced_composition(0.1, 1e-8, 10, 1e-6)
        assert math.isclose(delta, 10 * 1e-8 + 1e-6)

    def test_rejects_zero_slack(self):
        with pytest.raises(ValueError):
            advanced_composition(0.1, 0.0, 10, 0.0)


class TestOptimalPerRound:
    def test_composition_stays_under_total(self):
        per_round = optimal_per_round_epsilon(1.0, 50, 1e-6)
        eps_total, _ = advanced_composition(per_round, 0.0, 50, 1e-6)
        # Either the advanced bound holds, or basic composition was used.
        assert eps_total <= 1.0 + 1e-6 or per_round * 50 <= 1.0 + 1e-6

    def test_at_least_basic_split(self):
        per_round = optimal_per_round_epsilon(1.0, 10, 1e-6)
        assert per_round >= 1.0 / 10 - 1e-12

    def test_monotone_in_total(self):
        a = optimal_per_round_epsilon(0.5, 20, 1e-6)
        b = optimal_per_round_epsilon(2.0, 20, 1e-6)
        assert b > a


class TestPrivacyLedger:
    def test_totals(self):
        ledger = PrivacyLedger()
        ledger.spend(0.5, label="a")
        ledger.spend(0.25, 1e-9, label="b")
        assert math.isclose(ledger.total_epsilon, 0.75)
        assert math.isclose(ledger.total_delta, 1e-9)
        assert len(ledger) == 2

    def test_cap_enforced(self):
        ledger = PrivacyLedger(epsilon_cap=1.0)
        ledger.spend(0.6)
        with pytest.raises(BudgetExceededError):
            ledger.spend(0.6)
        # failed spend must not be recorded
        assert len(ledger) == 1
        assert math.isclose(ledger.total_epsilon, 0.6)

    def test_delta_cap_enforced(self):
        ledger = PrivacyLedger(epsilon_cap=10.0, delta_cap=1e-9)
        with pytest.raises(BudgetExceededError):
            ledger.spend(0.1, delta=1e-6)

    def test_remaining(self):
        ledger = PrivacyLedger(epsilon_cap=2.0)
        ledger.spend(0.5)
        assert math.isclose(ledger.remaining_epsilon, 1.5)

    def test_remaining_unlimited(self):
        assert PrivacyLedger().remaining_epsilon == math.inf

    def test_total_advanced_beats_basic_for_many_small_spends(self):
        ledger = PrivacyLedger()
        for i in range(200):
            ledger.spend(0.05, label=f"r{i}")
        eps_adv, _ = ledger.total_advanced(1e-6)
        assert eps_adv < ledger.total_epsilon

    def test_total_advanced_empty(self):
        assert PrivacyLedger().total_advanced(1e-6) == (0.0, 0.0)

    def test_total_advanced_rejects_zero_slack(self):
        ledger = PrivacyLedger()
        ledger.spend(0.1)
        with pytest.raises(ValueError):
            ledger.total_advanced(0.0)

    def test_delta_only_cap_enforced(self):
        # Regression: the δ check used to be guarded by the ε cap, so a
        # δ-only ledger never enforced its cap.
        ledger = PrivacyLedger(delta_cap=1e-9)
        ledger.spend(0.5)  # pure-ε spends are unaffected
        with pytest.raises(BudgetExceededError):
            ledger.spend(0.1, delta=1e-6)
        assert len(ledger) == 1
        assert ledger.total_delta == 0.0

    def test_delta_cap_none_is_unlimited(self):
        ledger = PrivacyLedger(epsilon_cap=10.0)
        ledger.spend(0.1, delta=0.5e-2)
        ledger.spend(0.1, delta=0.5e-2)
        assert math.isclose(ledger.total_delta, 1e-2)

    def test_running_totals_match_full_recompute(self):
        # Totals are kept incrementally (O(1) per spend); they must agree
        # with a from-scratch reduction over the audit list at all times.
        ledger = PrivacyLedger()
        for i in range(500):
            ledger.spend(0.01 * (1 + i % 3), delta=1e-12, label=f"r{i}")
        eps, delta = compose_sequential(ledger.spends)
        assert math.isclose(ledger.total_epsilon, eps)
        assert math.isclose(ledger.total_delta, delta)

    def test_totals_rebuilt_from_constructor_spends(self):
        spends = [PrivacySpend(0.5), PrivacySpend(0.25, 1e-9)]
        ledger = PrivacyLedger(spends=list(spends))
        assert math.isclose(ledger.total_epsilon, 0.75)
        assert math.isclose(ledger.total_delta, 1e-9)


class TestParallelGroups:
    def test_groups_compose_in_parallel(self):
        # Disjoint sub-populations (groups) cost the max; ungrouped
        # spends hit every user and add on top.
        ledger = PrivacyLedger()
        ledger.spend(0.2, label="common")  # everyone
        ledger.spend(1.0, group="window-0")
        ledger.spend(0.5, group="window-1")
        ledger.spend(0.7, group="window-1")
        assert math.isclose(ledger.total_epsilon, 0.2 + 1.2)

    def test_group_deltas_take_max(self):
        ledger = PrivacyLedger()
        ledger.spend(0.1, delta=1e-6, group="a")
        ledger.spend(0.1, delta=1e-9, group="b")
        assert math.isclose(ledger.total_delta, 1e-6)

    def test_cap_uses_parallel_totals(self):
        # Three disjoint windows at ε=1 cost 1, not 3 — the cap must see
        # the parallel-composed total.
        ledger = PrivacyLedger(epsilon_cap=1.5)
        for w in range(3):
            ledger.spend(1.0, group=f"window-{w}")
        with pytest.raises(BudgetExceededError):
            ledger.spend(1.0)  # ungrouped: 1 + 1 > 1.5
        assert math.isclose(ledger.total_epsilon, 1.0)


class TestSpendDeclaration:
    def test_validation(self):
        with pytest.raises(ValueError):
            SpendDeclaration(epsilon=0.0)
        with pytest.raises(ValueError):
            SpendDeclaration(epsilon=1.0, scope="weekly")
        assert SpendDeclaration(1.0, scope="one_time").is_one_time
        assert not SpendDeclaration(1.0).is_one_time

    def test_per_report_charges_every_call(self):
        ledger = PrivacyLedger()
        decl = SpendDeclaration(epsilon=0.5, mechanism="OLH")
        for t in range(4):
            assert ledger.charge(decl, label=f"round-{t}") is not None
        assert math.isclose(ledger.total_epsilon, 2.0)
        assert len(ledger) == 4

    def test_one_time_charges_once_per_key(self):
        ledger = PrivacyLedger()
        decl = SpendDeclaration(epsilon=2.0, scope="one_time", mechanism="memo")
        assert ledger.charge(decl) is not None
        assert ledger.charge(decl) is None  # replay: free
        assert math.isclose(ledger.total_epsilon, 2.0)
        # An independent memoized release (different key) charges again.
        assert ledger.charge(decl, key="value-7") is not None
        assert math.isclose(ledger.total_epsilon, 4.0)

    def test_rejected_one_time_charge_is_not_memoized(self):
        ledger = PrivacyLedger(epsilon_cap=1.0)
        decl = SpendDeclaration(epsilon=2.0, scope="one_time", mechanism="memo")
        with pytest.raises(BudgetExceededError):
            ledger.charge(decl)
        # The failed charge must not have consumed the key — a replay is
        # still a *charge attempt* (it raises), not a free memoized hit.
        with pytest.raises(BudgetExceededError):
            ledger.charge(decl)
        assert len(ledger) == 0


class TestSavepointRollback:
    def test_token_survives_repeated_rollbacks(self):
        from repro.core.budget import PrivacyLedger

        ledger = PrivacyLedger()
        token = ledger.savepoint()
        ledger.spend(1.0, group="g")
        ledger.rollback(token)
        ledger.spend(1.0, group="g")
        ledger.rollback(token)  # token must not have been corrupted
        ledger.spend(0.5, group="g")
        assert ledger.total_epsilon == 0.5
        assert len(ledger) == 1

    def test_rollback_restores_one_time_memo(self):
        from repro.core.budget import PrivacyLedger, SpendDeclaration

        ledger = PrivacyLedger()
        decl = SpendDeclaration(epsilon=1.0, scope="one_time", mechanism="M")
        token = ledger.savepoint()
        ledger.charge(decl, key="release-1")
        assert ledger.is_charged("release-1")
        ledger.rollback(token)
        assert not ledger.is_charged("release-1")
        # The release charges again (it never really happened).
        assert ledger.charge(decl, key="release-1") is not None
        assert ledger.total_epsilon == 1.0

    def test_anonymous_one_time_charge_rejected(self):
        # Distinct anonymous memoized releases must not collide on the
        # empty-string memo key and silently undercount the bill.
        from repro.core.budget import PrivacyLedger, SpendDeclaration

        ledger = PrivacyLedger()
        with pytest.raises(ValueError, match="memo identity"):
            ledger.charge(SpendDeclaration(epsilon=1.0, scope="one_time"))
        assert len(ledger) == 0


class TestReassignGroup:
    """Seal-time identity rewrites for data-driven windows."""

    def test_rewrites_group_and_label(self):
        ledger = PrivacyLedger()
        ledger.spend(1.0, label="session-0[open]", group="session-0[open]")
        ledger.spend(0.5, group="other")
        n = ledger.reassign_group(
            ["session-0[open]"], "session-0[2,9)", label="session-0[2,9)"
        )
        assert n == 1
        spend = ledger.spends[0]
        assert spend.group == "session-0[2,9)"
        assert spend.label == "session-0[2,9)"
        assert ledger.spends[1].group == "other"  # untouched

    def test_rebuilds_parallel_totals(self):
        # Folding group b into a turns two parallel ε=1 groups (max: 1)
        # into one group paying 2 sequentially.
        ledger = PrivacyLedger()
        ledger.spend(1.0, group="a")
        ledger.spend(1.0, group="b")
        assert math.isclose(ledger.total_epsilon, 1.0)
        ledger.reassign_group(["b"], "a")
        assert math.isclose(ledger.total_epsilon, 2.0)

    def test_collapse_duplicates_drops_repeat_charges(self):
        # The pane-merge argument: each provisional charge covered a
        # disjoint subpopulation of what is now one window, so the
        # merged group keeps one copy of the identical declaration.
        ledger = PrivacyLedger()
        ledger.spend(1.0, group="a")
        ledger.spend(1.0, group="b")
        ledger.spend(0.25, group="b")  # different params: must survive
        ledger.reassign_group(["b"], "a", collapse_duplicates=True)
        assert len(ledger) == 2
        assert [s.group for s in ledger.spends] == ["a", "a"]
        assert math.isclose(ledger.total_epsilon, 1.25)

    def test_target_cannot_be_source(self):
        ledger = PrivacyLedger()
        ledger.spend(1.0, group="a")
        with pytest.raises(ValueError, match="target"):
            ledger.reassign_group(["a", "b"], "a")

    def test_no_match_is_a_noop(self):
        ledger = PrivacyLedger()
        ledger.spend(1.0, group="a")
        assert ledger.reassign_group(["missing"], "a") == 0
        assert ledger.spends[0].group == "a"

    def test_rollback_undoes_reassign(self):
        # The collector wraps charge+reassign transactions in a
        # savepoint; rolling back must restore the rewritten groups,
        # the collapsed (dropped) spends, and the running totals.
        ledger = PrivacyLedger()
        ledger.spend(1.0, group="session-0[open]")
        ledger.spend(1.0, group="session-1[open]")
        token = ledger.savepoint()
        ledger.reassign_group(
            ["session-1[open]"], "session-0[open]", collapse_duplicates=True
        )
        ledger.spend(1.0, group="session-2[open]")
        assert len(ledger) == 2
        ledger.rollback(token)
        assert len(ledger) == 2
        assert [s.group for s in ledger.spends] == [
            "session-0[open]",
            "session-1[open]",
        ]
        assert math.isclose(ledger.total_epsilon, 1.0)  # parallel max again
