"""Unit tests for composition rules and the privacy ledger."""

import math

import pytest

from repro.core.budget import (
    BudgetExceededError,
    PrivacyLedger,
    PrivacySpend,
    advanced_composition,
    compose_parallel,
    compose_sequential,
    optimal_per_round_epsilon,
)


class TestPrivacySpend:
    def test_valid(self):
        s = PrivacySpend(1.0, 1e-9, "q1")
        assert s.epsilon == 1.0

    def test_rejects_nonpositive_epsilon(self):
        with pytest.raises(ValueError):
            PrivacySpend(0.0)

    def test_rejects_bad_delta(self):
        with pytest.raises(ValueError):
            PrivacySpend(1.0, delta=1.0)


class TestSequentialComposition:
    def test_sums(self):
        spends = [PrivacySpend(0.5), PrivacySpend(1.5, 1e-6)]
        eps, delta = compose_sequential(spends)
        assert eps == 2.0
        assert delta == 1e-6

    def test_empty(self):
        assert compose_sequential([]) == (0.0, 0.0)


class TestParallelComposition:
    def test_takes_max(self):
        spends = [PrivacySpend(0.5), PrivacySpend(1.5), PrivacySpend(1.0)]
        eps, delta = compose_parallel(spends)
        assert eps == 1.5
        assert delta == 0.0

    def test_empty(self):
        assert compose_parallel([]) == (0.0, 0.0)


class TestAdvancedComposition:
    def test_formula(self):
        eps, delta = advanced_composition(0.1, 0.0, 100, 1e-6)
        expected = 0.1 * math.sqrt(2 * 100 * math.log(1e6)) + 100 * 0.1 * (
            math.exp(0.1) - 1
        )
        assert math.isclose(eps, expected)
        assert math.isclose(delta, 1e-6)

    def test_beats_basic_for_many_rounds(self):
        k = 200
        eps_adv, _ = advanced_composition(0.05, 0.0, k, 1e-6)
        assert eps_adv < k * 0.05

    def test_worse_than_basic_for_few_rounds(self):
        eps_adv, _ = advanced_composition(1.0, 0.0, 2, 1e-6)
        assert eps_adv > 2.0

    def test_delta_accumulates(self):
        _, delta = advanced_composition(0.1, 1e-8, 10, 1e-6)
        assert math.isclose(delta, 10 * 1e-8 + 1e-6)

    def test_rejects_zero_slack(self):
        with pytest.raises(ValueError):
            advanced_composition(0.1, 0.0, 10, 0.0)


class TestOptimalPerRound:
    def test_composition_stays_under_total(self):
        per_round = optimal_per_round_epsilon(1.0, 50, 1e-6)
        eps_total, _ = advanced_composition(per_round, 0.0, 50, 1e-6)
        # Either the advanced bound holds, or basic composition was used.
        assert eps_total <= 1.0 + 1e-6 or per_round * 50 <= 1.0 + 1e-6

    def test_at_least_basic_split(self):
        per_round = optimal_per_round_epsilon(1.0, 10, 1e-6)
        assert per_round >= 1.0 / 10 - 1e-12

    def test_monotone_in_total(self):
        a = optimal_per_round_epsilon(0.5, 20, 1e-6)
        b = optimal_per_round_epsilon(2.0, 20, 1e-6)
        assert b > a


class TestPrivacyLedger:
    def test_totals(self):
        ledger = PrivacyLedger()
        ledger.spend(0.5, label="a")
        ledger.spend(0.25, 1e-9, label="b")
        assert math.isclose(ledger.total_epsilon, 0.75)
        assert math.isclose(ledger.total_delta, 1e-9)
        assert len(ledger) == 2

    def test_cap_enforced(self):
        ledger = PrivacyLedger(epsilon_cap=1.0)
        ledger.spend(0.6)
        with pytest.raises(BudgetExceededError):
            ledger.spend(0.6)
        # failed spend must not be recorded
        assert len(ledger) == 1
        assert math.isclose(ledger.total_epsilon, 0.6)

    def test_delta_cap_enforced(self):
        ledger = PrivacyLedger(epsilon_cap=10.0, delta_cap=1e-9)
        with pytest.raises(BudgetExceededError):
            ledger.spend(0.1, delta=1e-6)

    def test_remaining(self):
        ledger = PrivacyLedger(epsilon_cap=2.0)
        ledger.spend(0.5)
        assert math.isclose(ledger.remaining_epsilon, 1.5)

    def test_remaining_unlimited(self):
        assert PrivacyLedger().remaining_epsilon == math.inf

    def test_total_advanced_beats_basic_for_many_small_spends(self):
        ledger = PrivacyLedger()
        for i in range(200):
            ledger.spend(0.05, label=f"r{i}")
        eps_adv, _ = ledger.total_advanced(1e-6)
        assert eps_adv < ledger.total_epsilon

    def test_total_advanced_empty(self):
        assert PrivacyLedger().total_advanced(1e-6) == (0.0, 0.0)

    def test_total_advanced_rejects_zero_slack(self):
        ledger = PrivacyLedger()
        ledger.spend(0.1)
        with pytest.raises(ValueError):
            ledger.total_advanced(0.0)
