"""Unit tests for the statistical-toolkit helpers."""

import math

import numpy as np
import pytest

from repro.core.estimation import (
    ORACLE_REGISTRY,
    analytical_variances,
    choose_oracle,
    coverage,
    hoeffding_count_bound,
    make_oracle,
)
from repro.core.mechanism import postprocess_counts


class TestMakeOracle:
    def test_all_registry_names_construct(self):
        for name in ORACLE_REGISTRY:
            oracle = make_oracle(name, 16, 1.0)
            assert oracle.domain_size == 16
            assert oracle.epsilon == 1.0

    def test_unknown_name(self):
        with pytest.raises(ValueError, match="unknown oracle"):
            make_oracle("XYZ", 16, 1.0)


class TestAnalyticalVariances:
    def test_returns_all_oracles(self):
        var = analytical_variances(32, 1.0, 1000)
        assert set(var) == set(ORACLE_REGISTRY)
        assert all(v > 0 for v in var.values())

    def test_matches_direct_construction(self):
        var = analytical_variances(32, 1.0, 1000)
        assert math.isclose(var["OUE"], make_oracle("OUE", 32, 1.0).count_variance(1000))


class TestChooseOracle:
    def test_small_domain_prefers_de(self):
        assert choose_oracle(4, 1.0) == "DE"

    def test_large_domain_prefers_olh(self):
        assert choose_oracle(1024, 1.0) == "OLH"

    def test_threshold_scales_with_epsilon(self):
        """At bigger ε, DE stays optimal for bigger domains."""
        d = 50
        assert choose_oracle(d, 1.0) == "OLH"
        assert choose_oracle(d, 3.0) == "DE"

    def test_chooser_agrees_with_variances(self):
        for d in (4, 16, 64, 256):
            for eps in (0.5, 1.0, 2.0):
                choice = choose_oracle(d, eps)
                var = analytical_variances(d, eps, 1000)
                if choice == "DE":
                    assert var["DE"] <= var["OLH"] * 1.35
                else:
                    assert var["OLH"] <= var["DE"] * 1.05


class TestHoeffding:
    def test_wider_than_clt(self):
        oracle = make_oracle("OUE", 32, 1.0)
        clt = oracle.confidence_halfwidth(10_000, alpha=0.05)
        hoeff = hoeffding_count_bound(oracle, 10_000, alpha=0.05)
        assert hoeff > clt

    def test_scaling_with_n(self):
        oracle = make_oracle("OUE", 32, 1.0)
        assert math.isclose(
            hoeffding_count_bound(oracle, 40_000) / hoeffding_count_bound(oracle, 10_000),
            2.0,
        )

    def test_rejects_non_pure(self):
        oracle = make_oracle("SHE", 32, 1.0)
        with pytest.raises(TypeError):
            hoeffding_count_bound(oracle, 100)

    def test_alpha_validation(self):
        oracle = make_oracle("OUE", 32, 1.0)
        with pytest.raises(ValueError):
            hoeffding_count_bound(oracle, 100, alpha=1.0)

    def test_bound_actually_holds_empirically(self):
        oracle = make_oracle("OUE", 16, 1.0)
        values = np.arange(16).repeat(500)
        truth = np.full(16, 500.0)
        bound = hoeffding_count_bound(oracle, values.shape[0], alpha=0.05)
        miss = 0
        for rep in range(20):
            est = oracle.estimate_counts(oracle.privatize(values, rng=rep))
            miss += int(np.any(np.abs(est - truth) > bound))
        assert miss == 0  # 20 runs × 16 values, α=0.05 per value: ≈0 expected


class TestCoverage:
    def test_all_covered(self):
        t = np.asarray([1.0, 2.0, 3.0])
        assert coverage(t, t + 0.5, 1.0) == 1.0

    def test_none_covered(self):
        t = np.asarray([1.0, 2.0])
        assert coverage(t, t + 5.0, 1.0) == 0.0

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            coverage(np.zeros(3), np.zeros(4), 1.0)

    def test_negative_halfwidth(self):
        with pytest.raises(ValueError):
            coverage(np.zeros(3), np.zeros(3), -1.0)

    def test_clt_coverage_near_nominal(self):
        """95% intervals from the analytical variance cover ≈95%."""
        oracle = make_oracle("OLH", 32, 1.0)
        values = np.arange(32).repeat(250)
        truth = np.full(32, 250.0)
        rates = []
        for rep in range(10):
            est = oracle.estimate_counts(oracle.privatize(values, rng=100 + rep))
            hw = oracle.confidence_halfwidth(values.shape[0], alpha=0.05, f=250 / 8000)
            rates.append(coverage(truth, est, hw))
        mean_rate = float(np.mean(rates))
        assert 0.90 <= mean_rate <= 1.0


class TestPostprocess:
    def test_none_returns_copy(self):
        raw = np.asarray([0.5, -0.1, 0.6])
        out = postprocess_counts(raw, "none")
        assert np.array_equal(out, raw)
        out[0] = 99.0
        assert raw[0] == 0.5

    def test_clip_normalizes(self):
        out = postprocess_counts(np.asarray([0.5, -0.2, 0.7]), "clip")
        assert math.isclose(out.sum(), 1.0)
        assert np.all(out >= 0)
        assert out[1] == 0.0

    def test_normsub_preserves_order(self):
        raw = np.asarray([0.6, 0.3, -0.1, 0.2])
        out = postprocess_counts(raw, "normsub")
        assert math.isclose(out.sum(), 1.0)
        order_raw = np.argsort(-raw)
        # items surviving normsub keep their relative order
        survivors = [i for i in order_raw if out[i] > 0]
        assert all(
            out[a] >= out[b] - 1e-12 for a, b in zip(survivors, survivors[1:])
        )

    def test_normsub_shifts_not_scales(self):
        """Norm-sub subtracts a constant from surviving entries."""
        raw = np.asarray([0.6, 0.5, 0.3])  # sums to 1.4
        out = postprocess_counts(raw, "normsub")
        diffs = raw - out
        surviving = out > 0
        assert np.allclose(diffs[surviving], diffs[surviving][0])

    def test_all_negative_degrades_to_uniform(self):
        out = postprocess_counts(np.asarray([-1.0, -2.0]), "clip")
        assert np.allclose(out, 0.5)
