"""Unit tests for the length-prefixed frame layer in core.serialization."""

import io
import struct

import pytest

from repro.core.serialization import (
    FRAME_HEADER_BYTES,
    MAX_FRAME_BYTES,
    FrameError,
    OversizedFrameError,
    TruncatedFrameError,
    frame_header,
    frame_payload_size,
    read_frame,
    write_frame,
)


def test_frame_round_trip_preserves_boundaries():
    stream = io.BytesIO()
    payloads = [b"", b"x", b"hello world", bytes(range(256)) * 7]
    total = sum(write_frame(stream, p) for p in payloads)
    assert total == stream.tell()
    assert total == sum(FRAME_HEADER_BYTES + len(p) for p in payloads)
    stream.seek(0)
    for expected in payloads:
        assert read_frame(stream) == expected
    assert read_frame(stream) is None  # clean EOF, not an error
    assert read_frame(stream) is None  # and stays that way


def test_truncated_header_raises():
    stream = io.BytesIO(b"\x01\x02")  # 2 of 4 header bytes
    with pytest.raises(TruncatedFrameError):
        read_frame(stream)


def test_truncated_payload_raises():
    stream = io.BytesIO()
    write_frame(stream, b"0123456789")
    clipped = io.BytesIO(stream.getvalue()[:-3])
    with pytest.raises(TruncatedFrameError, match="3 bytes short"):
        read_frame(clipped)


def test_oversized_frame_rejected_at_reader():
    header = struct.pack("<I", 1024)
    with pytest.raises(OversizedFrameError):
        read_frame(io.BytesIO(header), max_frame_bytes=512)


def test_oversized_frame_rejected_at_writer():
    with pytest.raises(OversizedFrameError):
        write_frame(io.BytesIO(), b"x" * 513, max_frame_bytes=512)
    with pytest.raises(OversizedFrameError):
        frame_header(MAX_FRAME_BYTES + 1)


def test_frame_header_validation():
    with pytest.raises(FrameError):
        frame_header(-1)
    assert frame_payload_size(frame_header(77)) == 77
    with pytest.raises(TruncatedFrameError):
        frame_payload_size(b"\x00\x00")  # wrong header width


def test_short_reads_are_reassembled():
    class OneByteStream:
        """A stream that returns at most one byte per read call."""

        def __init__(self, data):
            self._data = io.BytesIO(data)

        def read(self, n):
            return self._data.read(min(n, 1))

    stream = io.BytesIO()
    write_frame(stream, b"reassemble me")
    assert read_frame(OneByteStream(stream.getvalue())) == b"reassemble me"
