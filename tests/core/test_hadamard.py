"""Unit tests for the Hadamard response oracle."""

import math

import numpy as np
import pytest

from repro.core.hadamard import HadamardResponse
from repro.core.mechanism import IndexedBitReports


class TestConfiguration:
    def test_order_is_padded_power_of_two(self):
        assert HadamardResponse(100, 1.0).order == 128
        assert HadamardResponse(128, 1.0).order == 128

    def test_q_star_exactly_half(self):
        assert HadamardResponse(64, 1.0).q_star == 0.5

    def test_variance_formula(self):
        hr = HadamardResponse(64, 1.0)
        p = math.e / (math.e + 1.0)
        expected = 1000 * 0.25 / (p - 0.5) ** 2
        assert math.isclose(hr.count_variance(1000), expected, rel_tol=1e-12)


class TestPrivatize:
    def test_report_structure(self):
        hr = HadamardResponse(32, 1.0)
        reports = hr.privatize(np.arange(32), rng=1)
        assert isinstance(reports, IndexedBitReports)
        assert reports.indices.min() >= 0
        assert reports.indices.max() < hr.order
        assert set(np.unique(reports.bits)) <= {-1.0, 1.0}

    def test_bit_agrees_with_entry_at_rate_p(self):
        from repro.util.wht import hadamard_entries

        hr = HadamardResponse(32, 2.0)
        n = 50_000
        reports = hr.privatize(np.full(n, 7), rng=3)
        truth = hadamard_entries(
            reports.indices.astype(np.uint64), np.uint64(7)
        )
        agree = float((reports.bits == truth).mean())
        assert abs(agree - hr.p_star) < 0.01


class TestAggregate:
    def test_support_counts_rejects_wrong_type(self):
        hr = HadamardResponse(16, 1.0)
        with pytest.raises(TypeError):
            hr.support_counts(np.zeros(4))

    def test_support_counts_rejects_bad_index(self):
        hr = HadamardResponse(16, 1.0)
        bad = IndexedBitReports(
            indices=np.asarray([0, 16], dtype=np.int64),
            bits=np.asarray([1.0, -1.0]),
        )
        with pytest.raises(ValueError, match="refusing"):
            hr.support_counts(bad)

    def test_support_counts_rejects_non_pm_one_bits(self):
        hr = HadamardResponse(16, 1.0)
        bad = IndexedBitReports(
            indices=np.asarray([0, 1], dtype=np.int64),
            bits=np.asarray([1.0, 0.5]),
        )
        with pytest.raises(ValueError, match="±1"):
            hr.support_counts(bad)

    def test_padding_values_discarded(self):
        hr = HadamardResponse(100, 1.0)
        reports = hr.privatize(np.arange(100), rng=5)
        assert hr.estimate_counts(reports).shape == (100,)

    def test_candidate_path_matches_transform_path(self):
        hr = HadamardResponse(64, 1.0)
        values = np.arange(64).repeat(20)
        reports = hr.privatize(values, rng=7)
        full = hr.support_counts(reports)
        cands = np.asarray([0, 31, 63])
        partial = hr.support_counts_for(reports, cands)
        assert np.allclose(full[cands], partial)

    def test_estimation_quality(self):
        hr = HadamardResponse(64, 1.0)
        values = np.arange(64).repeat(300)
        reports = hr.privatize(values, rng=9)
        est = hr.estimate_counts(reports)
        sd = hr.count_stddev(values.shape[0])
        assert np.all(np.abs(est - 300) < 5 * sd)

    def test_log_likelihood_includes_index_factor(self):
        hr = HadamardResponse(16, 1.0)
        reports = hr.privatize(np.full(10, 3), rng=11)
        ll = hr.log_likelihood(reports, 3)
        assert np.all(ll <= math.log(hr.p_star) - math.log(hr.order) + 1e-12)


class TestIndexedBitReports:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError, match="align"):
            IndexedBitReports(
                indices=np.zeros(2, dtype=np.int64), bits=np.zeros(3)
            )
