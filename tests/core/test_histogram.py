"""Unit tests for SHE and THE histogram encodings."""

import math

import numpy as np
import pytest

from repro.core.histogram import (
    SummationHistogramEncoding,
    ThresholdHistogramEncoding,
    _laplace_cdf,
)


class TestLaplaceCdf:
    def test_symmetry(self):
        for x in (0.3, 1.0, 2.5):
            assert math.isclose(_laplace_cdf(x, 1.0) + _laplace_cdf(-x, 1.0), 1.0)

    def test_at_zero(self):
        assert _laplace_cdf(0.0, 2.0) == 0.5

    def test_monotone(self):
        vals = [_laplace_cdf(x, 1.0) for x in (-2, -1, 0, 1, 2)]
        assert all(a < b for a, b in zip(vals, vals[1:]))


class TestSHE:
    def test_report_is_float_matrix(self):
        she = SummationHistogramEncoding(8, 1.0)
        reports = she.privatize(np.arange(8), rng=1)
        assert reports.shape == (8, 8)
        assert reports.dtype == np.float64

    def test_hot_coordinate_shifted_by_one(self):
        she = SummationHistogramEncoding(4, 2.0)
        n = 50_000
        reports = she.privatize(np.full(n, 1), rng=3)
        means = reports.mean(axis=0)
        assert abs(means[1] - 1.0) < 0.05
        assert np.all(np.abs(means[[0, 2, 3]]) < 0.05)

    def test_variance_exact_formula(self):
        she = SummationHistogramEncoding(8, 1.0)
        assert math.isclose(she.count_variance(100), 100 * 8.0)

    def test_variance_frequency_independent(self):
        she = SummationHistogramEncoding(8, 1.0)
        assert she.count_variance(100, 0.0) == she.count_variance(100, 1.0)

    def test_estimate_counts_shape_check(self):
        she = SummationHistogramEncoding(8, 1.0)
        with pytest.raises(ValueError, match="shape"):
            she.estimate_counts(np.zeros((3, 5)))

    def test_log_density_rejects_bad_value(self):
        she = SummationHistogramEncoding(8, 1.0)
        reports = she.privatize(np.arange(8), rng=1)
        with pytest.raises(ValueError):
            she.log_density(reports, 8)


class TestTHE:
    def test_default_theta_in_range(self):
        for eps in (0.5, 1.0, 2.0, 4.0):
            the = ThresholdHistogramEncoding(8, eps)
            assert 0.5 < the.theta <= 1.0

    def test_theta_is_variance_optimal(self):
        """Perturbing θ in either direction must not reduce the variance."""
        the = ThresholdHistogramEncoding(8, 1.0)
        base = the.count_variance(1000)
        for delta in (-0.05, 0.05):
            theta = the.theta + delta
            if 0.5 < theta <= 1.0:
                other = ThresholdHistogramEncoding(8, 1.0, theta=theta)
                assert other.count_variance(1000) >= base - 1e-9

    def test_explicit_theta_validation(self):
        with pytest.raises(ValueError):
            ThresholdHistogramEncoding(8, 1.0, theta=0.4)
        with pytest.raises(ValueError):
            ThresholdHistogramEncoding(8, 1.0, theta=1.2)

    def test_p_q_match_cdf(self):
        the = ThresholdHistogramEncoding(8, 1.0, theta=0.8)
        scale = 2.0
        assert math.isclose(the.p_star, 1 - _laplace_cdf(0.8 - 1.0, scale))
        assert math.isclose(the.q_star, 1 - _laplace_cdf(0.8, scale))

    def test_reports_are_bits(self):
        the = ThresholdHistogramEncoding(8, 1.0)
        reports = the.privatize(np.arange(8).repeat(10), rng=5)
        assert reports.dtype == np.uint8
        assert set(np.unique(reports)) <= {0, 1}

    def test_bit_rates_match_p_q(self):
        the = ThresholdHistogramEncoding(6, 1.0)
        n = 40_000
        reports = the.privatize(np.full(n, 2), rng=7)
        assert abs(float(reports[:, 2].mean()) - the.p_star) < 0.01
        assert abs(float(reports[:, 4].mean()) - the.q_star) < 0.01

    def test_the_beats_she(self):
        for eps in (0.5, 1.0, 2.0):
            the = ThresholdHistogramEncoding(8, eps)
            she = SummationHistogramEncoding(8, eps)
            assert the.count_variance(1000) < she.count_variance(1000)

    def test_bit_marginals_out_of_domain(self):
        the = ThresholdHistogramEncoding(8, 1.0)
        with pytest.raises(ValueError):
            the.bit_marginals(-1)

    def test_support_counts_shape_check(self):
        the = ThresholdHistogramEncoding(8, 1.0)
        with pytest.raises(ValueError):
            the.support_counts(np.zeros((2, 7), dtype=np.uint8))


def test_summation_finalize_overflows_to_inf():
    # Exact sums beyond the float64 range round to ±inf, like a float
    # accumulator would, instead of crashing the big-int division.
    from repro.core import make_oracle

    oracle = make_oracle("SHE", 2, 1.0)
    acc = oracle.accumulator()
    acc.absorb(np.full((4, 2), 1e308))
    assert np.all(acc.finalize() == np.inf)
    neg = oracle.accumulator()
    neg.absorb(np.full((4, 2), -1e308))
    assert np.all(neg.finalize() == -np.inf)
