"""Unit tests for BLH and OLH local-hashing oracles."""

import math

import numpy as np
import pytest

from repro.core.local_hashing import BinaryLocalHashing, OptimalLocalHashing
from repro.core.mechanism import HashedReports


class TestConfiguration:
    def test_olh_default_g(self):
        olh = OptimalLocalHashing(64, 1.0)
        assert olh.g == max(2, round(math.e + 1))

    def test_olh_g_grows_with_epsilon(self):
        assert OptimalLocalHashing(64, 3.0).g > OptimalLocalHashing(64, 1.0).g

    def test_blh_is_binary(self):
        assert BinaryLocalHashing(64, 1.0).g == 2

    def test_explicit_g(self):
        olh = OptimalLocalHashing(64, 1.0, g=7)
        assert olh.g == 7

    def test_rejects_g_below_two(self):
        with pytest.raises(ValueError):
            OptimalLocalHashing(64, 1.0, g=1)

    def test_q_star_is_one_over_g(self):
        olh = OptimalLocalHashing(64, 1.0, g=5)
        assert olh.q_star == 0.2

    def test_olh_variance_close_to_oue(self):
        from repro.core.unary import OptimalUnaryEncoding

        for eps in (0.7, 1.0, 1.5):
            olh = OptimalLocalHashing(64, eps)
            oue = OptimalUnaryEncoding(64, eps)
            ratio = olh.count_variance(1000) / oue.count_variance(1000)
            assert 0.9 < ratio < 1.35  # g rounding costs a few percent

    def test_blh_worse_than_olh_at_large_epsilon(self):
        blh = BinaryLocalHashing(64, 3.0)
        olh = OptimalLocalHashing(64, 3.0)
        assert blh.count_variance(1000) > olh.count_variance(1000)


class TestPrivatize:
    def test_report_structure(self):
        olh = OptimalLocalHashing(32, 1.0)
        reports = olh.privatize(np.arange(32), rng=1)
        assert isinstance(reports, HashedReports)
        assert len(reports) == 32
        assert reports.values.min() >= 0
        assert reports.values.max() < olh.g

    def test_distinct_seeds_per_user(self):
        olh = OptimalLocalHashing(32, 1.0)
        reports = olh.privatize(np.zeros(5000, dtype=int), rng=2)
        assert np.unique(reports.seeds).size == 5000

    def test_report_equals_hash_with_prob_p(self):
        from repro.util.hashing import hash_elementwise

        olh = OptimalLocalHashing(64, 1.0)
        n = 50_000
        reports = olh.privatize(np.full(n, 9), rng=3)
        hashed = hash_elementwise(reports.seeds, np.full(n, 9), olh.g)
        agree = float((reports.values == hashed).mean())
        assert abs(agree - olh.p_star) < 0.01


class TestAggregate:
    def test_support_counts_rejects_wrong_type(self):
        olh = OptimalLocalHashing(16, 1.0)
        with pytest.raises(TypeError):
            olh.support_counts(np.zeros(10))

    def test_support_counts_rejects_out_of_range_values(self):
        olh = OptimalLocalHashing(16, 1.0)
        bad = HashedReports(
            seeds=np.asarray([1, 2], dtype=np.uint64),
            values=np.asarray([0, olh.g], dtype=np.int64),
        )
        with pytest.raises(ValueError, match="refusing"):
            olh.support_counts(bad)

    def test_candidate_counts_match_full(self):
        olh = OptimalLocalHashing(64, 1.0)
        values = np.arange(64).repeat(50)
        reports = olh.privatize(values, rng=5)
        full = olh.support_counts(reports)
        cands = np.asarray([0, 17, 63])
        partial = olh.support_counts_for(reports, cands)
        assert np.allclose(full[cands], partial)

    def test_large_domain_candidates_only(self):
        """OLH must decode a 2^40 domain via candidates without blowing up."""
        domain = 1 << 40
        olh = OptimalLocalHashing(domain, 1.0)
        heavy = 123_456_789_012
        values = np.full(5000, heavy, dtype=np.int64)
        reports = olh.privatize(values, rng=7)
        cands = np.asarray([heavy, heavy + 1, 42], dtype=np.int64)
        est = olh.estimate_counts_for(reports, cands)
        sd = olh.count_stddev(5000)
        assert abs(est[0] - 5000) < 5 * sd
        assert abs(est[1]) < 5 * sd
        assert abs(est[2]) < 5 * sd

    def test_log_likelihood_rejects_bad_value(self):
        olh = OptimalLocalHashing(16, 1.0)
        reports = olh.privatize(np.arange(16), rng=9)
        with pytest.raises(ValueError):
            olh.log_likelihood(reports, 16)


class TestHashedReports:
    def test_alignment_enforced(self):
        with pytest.raises(ValueError, match="align"):
            HashedReports(
                seeds=np.zeros(3, dtype=np.uint64),
                values=np.zeros(4, dtype=np.int64),
            )
