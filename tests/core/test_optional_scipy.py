"""scipy is optional on the core import path.

``repro.core`` must import (and the estimators must run) on a minimal
numpy-only install; the two scipy touchpoints — the CLT confidence
interval and THE's threshold optimizer — must fail lazily with a clear,
actionable message instead of breaking the package import.
"""

import builtins
import sys

import pytest

from repro.core import ThresholdHistogramEncoding, make_oracle


@pytest.fixture
def no_scipy(monkeypatch):
    """Make any scipy import raise ImportError inside the test."""
    for mod in list(sys.modules):
        if mod == "scipy" or mod.startswith("scipy."):
            monkeypatch.delitem(sys.modules, mod)
    real_import = builtins.__import__

    def blocked(name, *args, **kwargs):
        if name == "scipy" or name.startswith("scipy."):
            raise ImportError(f"No module named {name!r} (blocked by test)")
        return real_import(name, *args, **kwargs)

    monkeypatch.setattr(builtins, "__import__", blocked)


def test_confidence_halfwidth_error_names_scipy_and_alternative(no_scipy):
    oracle = make_oracle("OLH", 16, 1.0)
    with pytest.raises(ImportError, match="scipy") as excinfo:
        oracle.confidence_halfwidth(10_000)
    assert "hoeffding_count_bound" in str(excinfo.value)


def test_the_with_explicit_theta_needs_no_scipy(no_scipy):
    oracle = ThresholdHistogramEncoding(8, 1.0, theta=0.75)
    assert oracle.theta == 0.75
    import numpy as np

    reports = oracle.privatize(np.arange(8).repeat(10), rng=1)
    assert oracle.estimate_counts(reports).shape == (8,)


def test_the_default_theta_error_suggests_explicit_theta(no_scipy):
    with pytest.raises(ImportError, match="scipy") as excinfo:
        ThresholdHistogramEncoding(8, 1.0)
    assert "theta" in str(excinfo.value)


def test_core_estimators_run_without_scipy(no_scipy):
    import numpy as np

    for name in ("DE", "OUE", "OLH", "HR", "SHE"):
        oracle = make_oracle(name, 8, 1.0)
        reports = oracle.privatize(np.arange(8).repeat(5), rng=2)
        assert oracle.estimate_counts(reports).shape == (8,)
