"""Edge cases of the simplex projections in ``postprocess_counts``.

The hypothesis suite covers random vectors; these pin the adversarial
shapes deployments actually hit — estimates that are all-negative (tiny
populations), already consistent (no-op expected), and long skewed
vectors where normsub's iteration must actually converge.
"""

import numpy as np
import pytest

from repro.core import postprocess_counts


def _assert_simplex(vec: np.ndarray) -> None:
    assert np.isclose(vec.sum(), 1.0, atol=1e-9)
    assert np.all(vec >= -1e-12)


@pytest.mark.parametrize("method", ["clip", "normsub"])
def test_all_negative_input_falls_back_to_uniform(method):
    raw = np.asarray([-0.4, -0.1, -2.0, -0.7])
    out = postprocess_counts(raw, method)
    _assert_simplex(out)
    assert np.allclose(out, 0.25)


@pytest.mark.parametrize("method", ["clip", "normsub"])
def test_already_normalized_input_is_untouched(method):
    raw = np.asarray([0.5, 0.25, 0.125, 0.125])
    out = postprocess_counts(raw, method)
    _assert_simplex(out)
    assert np.allclose(out, raw, atol=1e-12)
    # and the projection is idempotent
    assert np.allclose(postprocess_counts(out, method), out, atol=1e-12)


def test_skewed_1000_bin_vector_lands_on_simplex():
    # A noisy Zipf-like estimate: heavy head, long slightly-negative tail
    # (the shape raw LDP estimates of skewed data actually take).
    gen = np.random.default_rng(1000)
    d = 1000
    truth = (np.arange(1, d + 1, dtype=np.float64)) ** -1.3
    truth /= truth.sum()
    raw = truth + gen.normal(0.0, 5e-4, size=d)
    assert (raw < 0).any()  # the tail really does dip below zero
    head_err = {}
    for method in ("clip", "normsub"):
        out = postprocess_counts(raw, method)
        _assert_simplex(out)
        # the head survives the projection roughly intact
        head_err[method] = abs(out[0] - truth[0])
        assert head_err[method] < 0.05
    # normsub's additive correction preserves the head better than
    # clip's multiplicative rescale — the reason it is the default
    # consistency step in the heavy-hitter literature.
    assert head_err["normsub"] < head_err["clip"]


def test_normsub_converges_on_pathological_mass():
    # Far-from-normalized input: total mass ≫ 1 concentrated up front.
    raw = np.concatenate([np.full(5, 10.0), np.full(995, -0.5)])
    out = postprocess_counts(raw, "normsub")
    _assert_simplex(out)
    assert np.all(out[5:] == 0.0)
    assert np.allclose(out[:5], 0.2)


def test_none_returns_copy():
    raw = np.asarray([0.2, -0.1, 0.9])
    out = postprocess_counts(raw, "none")
    assert np.array_equal(out, raw)
    out[0] = 5.0
    assert raw[0] == 0.2


def test_unknown_method_rejected():
    with pytest.raises(ValueError, match="unknown postprocess"):
        postprocess_counts(np.asarray([0.5, 0.5]), "project")
