"""Cross-mechanism ε-LDP audits.

Every mechanism exposes its exact worst-case likelihood ratio; an ε-LDP
mechanism that *uses its whole budget* must return exactly ``e^ε``, and
post-processed mechanisms must stay at or below it.  Where a mechanism
has a closed-form response distribution we additionally audit it
directly: enumerate outputs, compare probability ratios across input
pairs.

These are the library's soundness anchors — if one of them fails, a
mechanism is either violating its guarantee or wasting budget.
"""

import math

import numpy as np
import pytest

from repro.core import ORACLE_REGISTRY, make_oracle
from repro.core.histogram import ThresholdHistogramEncoding
from repro.core.randomized_response import DirectEncoding, WarnerRandomizedResponse
from repro.numeric import DuchiMean, LocalLaplaceMean
from repro.systems.apple import CountMeanSketch, HadamardCountMeanSketch
from repro.systems.microsoft import DBitFlip, OneBitMean

EPSILONS = [0.25, 0.5, 1.0, 2.0, 4.0]

#: mechanisms whose released output realizes the full budget exactly
TIGHT_ORACLES = ["DE", "SUE", "OUE", "SHE", "BLH", "OLH", "HR"]


class TestOracleRatios:
    @pytest.mark.parametrize("name", TIGHT_ORACLES)
    @pytest.mark.parametrize("epsilon", EPSILONS)
    def test_tight_mechanisms_realize_exactly_e_eps(self, name, epsilon):
        oracle = make_oracle(name, 32, epsilon)
        assert math.isclose(
            oracle.max_privacy_ratio(), math.exp(epsilon), rel_tol=1e-9
        )

    @pytest.mark.parametrize("epsilon", EPSILONS)
    def test_the_is_strictly_below_budget(self, epsilon):
        """THE post-processes an ε-LDP release: realized ratio < e^ε."""
        oracle = ThresholdHistogramEncoding(32, epsilon)
        ratio = oracle.max_privacy_ratio()
        assert ratio <= math.exp(epsilon) * (1 + 1e-9)
        assert ratio < math.exp(epsilon)

    @pytest.mark.parametrize("name", list(ORACLE_REGISTRY))
    def test_all_registered_oracles_within_budget(self, name):
        oracle = make_oracle(name, 16, 1.0)
        assert oracle.max_privacy_ratio() <= math.e * (1 + 1e-9)


class TestDirectEncodingDistribution:
    @pytest.mark.parametrize("epsilon", EPSILONS)
    def test_exact_distribution_ratio(self, epsilon):
        d = 10
        oracle = DirectEncoding(d, epsilon)
        dists = np.stack([oracle.response_distribution(v) for v in range(d)])
        assert np.allclose(dists.sum(axis=1), 1.0)
        worst = 0.0
        for v1 in range(d):
            for v2 in range(d):
                if v1 == v2:
                    continue
                worst = max(worst, float((dists[v1] / dists[v2]).max()))
        assert math.isclose(worst, math.exp(epsilon), rel_tol=1e-9)

    def test_empirical_distribution_matches_exact(self):
        oracle = DirectEncoding(6, 1.0)
        n = 200_000
        reports = oracle.privatize(np.full(n, 2), rng=5)
        empirical = np.bincount(reports, minlength=6) / n
        exact = oracle.response_distribution(2)
        assert np.all(np.abs(empirical - exact) < 5 * np.sqrt(exact * (1 - exact) / n))


class TestWarnerDistribution:
    @pytest.mark.parametrize("epsilon", EPSILONS)
    def test_ratio(self, epsilon):
        rr = WarnerRandomizedResponse(epsilon)
        d0 = rr.response_distribution(0)
        d1 = rr.response_distribution(1)
        worst = max(float((d0 / d1).max()), float((d1 / d0).max()))
        assert math.isclose(worst, math.exp(epsilon), rel_tol=1e-9)
        assert math.isclose(rr.max_privacy_ratio(), math.exp(epsilon), rel_tol=1e-9)


class TestUnaryBitwiseDistribution:
    @pytest.mark.parametrize("name", ["SUE", "OUE"])
    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0])
    def test_worst_report_ratio_from_marginals(self, name, epsilon):
        """Bits are independent: worst report ratio factorizes exactly."""
        oracle = make_oracle(name, 8, epsilon)
        m1 = oracle.bit_marginals(1)
        m2 = oracle.bit_marginals(5)
        # extremal report: bit 1 set, bit 5 clear; other bits cancel
        ratio = (m1[1] / m2[1]) * ((1 - m1[5]) / (1 - m2[5]))
        assert ratio <= math.exp(epsilon) * (1 + 1e-9)
        assert math.isclose(ratio, math.exp(epsilon), rel_tol=1e-9)


class TestLogLikelihoodAudit:
    """Sampled-report audit: realized likelihood ratios never exceed e^ε."""

    def test_de_loglik_ratio_bounded(self):
        oracle = DirectEncoding(16, 1.0)
        reports = oracle.privatize(np.full(5000, 3), rng=9)
        ll_3 = oracle.log_likelihood(reports, 3)
        ll_7 = oracle.log_likelihood(reports, 7)
        assert np.all(ll_3 - ll_7 <= 1.0 + 1e-9)

    def test_unary_loglik_ratio_bounded(self):
        oracle = make_oracle("OUE", 12, 1.5)
        reports = oracle.privatize(np.full(2000, 4), rng=11)
        diff = oracle.log_likelihood(reports, 4) - oracle.log_likelihood(reports, 9)
        assert np.all(diff <= 1.5 + 1e-9)

    def test_olh_loglik_ratio_bounded(self):
        oracle = make_oracle("OLH", 64, 2.0)
        reports = oracle.privatize(np.full(3000, 10), rng=13)
        diff = oracle.log_likelihood(reports, 10) - oracle.log_likelihood(reports, 20)
        assert np.all(diff <= 2.0 + 1e-9)

    def test_hr_loglik_ratio_bounded(self):
        oracle = make_oracle("HR", 32, 1.0)
        reports = oracle.privatize(np.full(3000, 5), rng=17)
        diff = oracle.log_likelihood(reports, 5) - oracle.log_likelihood(reports, 6)
        assert np.all(diff <= 1.0 + 1e-9)

    def test_she_density_ratio_bounded(self):
        oracle = make_oracle("SHE", 8, 1.0)
        reports = oracle.privatize(np.full(500, 2), rng=19)
        diff = oracle.log_density(reports, 2) - oracle.log_density(reports, 5)
        assert np.all(diff <= 1.0 + 1e-9)


class TestSystemMechanismRatios:
    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0, 4.0])
    def test_cms(self, epsilon):
        cms = CountMeanSketch(1000, epsilon, k=4, m=32)
        assert math.isclose(cms.max_privacy_ratio(), math.exp(epsilon), rel_tol=1e-9)

    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0, 4.0])
    def test_hcms(self, epsilon):
        hcms = HadamardCountMeanSketch(1000, epsilon, k=4, m=32)
        assert math.isclose(hcms.max_privacy_ratio(), math.exp(epsilon), rel_tol=1e-9)

    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0])
    def test_onebit(self, epsilon):
        ob = OneBitMean(10.0, epsilon)
        assert math.isclose(ob.max_privacy_ratio(), math.exp(epsilon), rel_tol=1e-9)

    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0])
    def test_dbitflip(self, epsilon):
        db = DBitFlip(32, 4, epsilon)
        assert math.isclose(db.max_privacy_ratio(), math.exp(epsilon), rel_tol=1e-9)

    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0])
    def test_duchi(self, epsilon):
        dm = DuchiMean(epsilon)
        assert math.isclose(dm.max_privacy_ratio(), math.exp(epsilon), rel_tol=1e-9)

    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0])
    def test_local_laplace(self, epsilon):
        ll = LocalLaplaceMean(epsilon)
        assert math.isclose(ll.max_privacy_ratio(), math.exp(epsilon), rel_tol=1e-9)

    def test_onebit_response_probability_monotone(self):
        ob = OneBitMean(100.0, 1.0)
        probs = [ob.response_probability(x) for x in (0.0, 25.0, 50.0, 100.0)]
        assert all(a < b for a, b in zip(probs, probs[1:]))


class TestRapporPrivacy:
    def test_epsilon_formulas_positive_and_ordered(self):
        from repro.systems.rappor import RapporParams

        params = RapporParams()
        assert params.epsilon_one_report > 0
        assert params.epsilon_permanent > params.epsilon_one_report

    def test_permanent_epsilon_matches_paper_default(self):
        """f=0.5, h=2: ε∞ = 2·2·ln(3) ≈ 4.39 (Erlingsson et al. §3)."""
        from repro.systems.rappor import RapporParams

        params = RapporParams()
        assert math.isclose(params.epsilon_permanent, 4 * math.log(3.0), rel_tol=1e-12)

    def test_stronger_f_means_less_epsilon(self):
        from repro.systems.rappor import RapporParams

        weak = RapporParams(f=0.25)
        strong = RapporParams(f=0.75)
        assert strong.epsilon_permanent < weak.epsilon_permanent
        assert strong.epsilon_one_report < weak.epsilon_one_report
