"""Unit tests for Warner RR and direct encoding."""

import math

import numpy as np
import pytest

from repro.core.randomized_response import DirectEncoding, WarnerRandomizedResponse


class TestWarner:
    def test_truth_probability(self):
        rr = WarnerRandomizedResponse(math.log(3.0))
        assert math.isclose(rr.p_truth, 0.75)

    def test_privatize_shape_and_dtype(self):
        rr = WarnerRandomizedResponse(1.0)
        bits = np.asarray([0, 1] * 50)
        out = rr.privatize(bits, rng=1)
        assert out.shape == bits.shape
        assert out.dtype == np.uint8
        assert set(np.unique(out)) <= {0, 1}

    def test_privatize_rejects_non_binary(self):
        rr = WarnerRandomizedResponse(1.0)
        with pytest.raises(ValueError, match="0/1"):
            rr.privatize(np.asarray([0, 2]), rng=1)

    def test_privatize_rejects_empty(self):
        rr = WarnerRandomizedResponse(1.0)
        with pytest.raises(ValueError):
            rr.privatize(np.asarray([], dtype=int), rng=1)

    def test_estimate_unbiased(self):
        rr = WarnerRandomizedResponse(1.0)
        pi = 0.3
        n = 100_000
        gen = np.random.default_rng(5)
        bits = (gen.random(n) < pi).astype(np.uint8)
        est = rr.estimate_proportion(rr.privatize(bits, rng=7))
        sd = math.sqrt(rr.proportion_variance(n, pi))
        assert abs(est - pi) < 5 * sd

    def test_estimate_rejects_empty(self):
        rr = WarnerRandomizedResponse(1.0)
        with pytest.raises(ValueError):
            rr.estimate_proportion(np.asarray([]))

    def test_variance_maximized_at_half(self):
        rr = WarnerRandomizedResponse(1.0)
        v_half = rr.proportion_variance(1000, 0.5)
        assert v_half >= rr.proportion_variance(1000, 0.1)
        assert v_half >= rr.proportion_variance(1000, 0.9)

    def test_variance_shrinks_with_n(self):
        rr = WarnerRandomizedResponse(1.0)
        assert rr.proportion_variance(10_000) < rr.proportion_variance(100)

    def test_variance_rejects_bad_args(self):
        rr = WarnerRandomizedResponse(1.0)
        with pytest.raises(ValueError):
            rr.proportion_variance(0)
        with pytest.raises(ValueError):
            rr.proportion_variance(10, 1.5)

    def test_response_distribution_rejects_bad_bit(self):
        rr = WarnerRandomizedResponse(1.0)
        with pytest.raises(ValueError):
            rr.response_distribution(2)

    def test_empirical_proportion_variance_matches(self):
        rr = WarnerRandomizedResponse(1.0)
        pi = 0.4
        n = 2000
        gen = np.random.default_rng(11)
        bits = (gen.random(n) < pi).astype(np.uint8)
        ests = [
            rr.estimate_proportion(rr.privatize(bits, rng=100 + i)) for i in range(60)
        ]
        emp = float(np.var(ests, ddof=1))
        # Conditional on the data: only the mechanism noise,
        # Var = [λ(1−λ) − ...] ≈ formula; wide chi-square band.
        ana = rr.proportion_variance(n, pi)
        assert 0.4 * ana < emp < 2.0 * ana


class TestDirectEncoding:
    def test_probabilities(self):
        de = DirectEncoding(4, math.log(3.0))
        assert math.isclose(de.p_star, 3.0 / 6.0)
        assert math.isclose(de.q_star, 1.0 / 6.0)

    def test_lies_never_equal_truth_at_tiny_epsilon(self):
        """With ε→0 almost every report is a lie; none may equal the truth
        by the lie-construction (truth only appears via the keep branch)."""
        de = DirectEncoding(8, 1e-9)
        n = 50_000
        reports = de.privatize(np.full(n, 3), rng=3)
        frac_truth = float((reports == 3).mean())
        # P(report = truth) = p ≈ 1/8 at ε≈0
        assert abs(frac_truth - de.p_star) < 0.01

    def test_report_range(self):
        de = DirectEncoding(5, 1.0)
        reports = de.privatize(np.arange(5).repeat(100), rng=9)
        assert reports.min() >= 0
        assert reports.max() < 5

    def test_support_counts_rejects_out_of_domain(self):
        de = DirectEncoding(4, 1.0)
        with pytest.raises(ValueError, match="refusing"):
            de.support_counts(np.asarray([0, 4]))

    def test_support_counts_rejects_2d(self):
        de = DirectEncoding(4, 1.0)
        with pytest.raises(ValueError):
            de.support_counts(np.zeros((2, 2), dtype=int))

    def test_domain_of_one_rejected(self):
        with pytest.raises(ValueError):
            DirectEncoding(1, 1.0)

    def test_log_likelihood_values(self):
        de = DirectEncoding(4, 1.0)
        ll = de.log_likelihood(np.asarray([2, 3]), 2)
        assert math.isclose(ll[0], math.log(de.p_star))
        assert math.isclose(ll[1], math.log(de.q_star))

    def test_response_distribution_out_of_domain(self):
        de = DirectEncoding(4, 1.0)
        with pytest.raises(ValueError):
            de.response_distribution(4)

    def test_count_variance_at_f(self):
        de = DirectEncoding(8, 1.0)
        v0 = de.count_variance(1000, 0.0)
        v1 = de.count_variance(1000, 1.0)
        p, q = de.p_star, de.q_star
        assert math.isclose(v0, 1000 * q * (1 - q) / (p - q) ** 2)
        assert math.isclose(v1, 1000 * p * (1 - p) / (p - q) ** 2)

    def test_count_variance_rejects_bad_f(self):
        de = DirectEncoding(8, 1.0)
        with pytest.raises(ValueError):
            de.count_variance(10, 1.5)
