"""Unit tests for the shared event-span / watermark merge helpers."""

import math

import numpy as np
import pytest

from repro.core.timed import merge_event_spans, merged_watermark


class TestMergeEventSpans:
    def test_empty_is_none(self):
        assert merge_event_spans([]) is None

    def test_all_none_is_none(self):
        assert merge_event_spans([None, None]) is None

    def test_single_shard_passes_through(self):
        assert merge_event_spans([(3.0, 9.5)]) == (3.0, 9.5)

    def test_union_skips_none_shards(self):
        spans = [(5.0, 8.0), None, (2.0, 6.0), None, (7.0, 11.0)]
        assert merge_event_spans(spans) == (2.0, 11.0)

    def test_inverted_span_rejected(self):
        with pytest.raises(ValueError, match="ends before it starts"):
            merge_event_spans([(4.0, 1.0)])

    def test_matches_sharded_collection_stats(self):
        # The rewired ShardedCollectionStats.event_span must agree with
        # the raw timestamps it summarizes.
        from repro.core import make_oracle
        from repro.protocol import run_sharded_collection

        ts = np.random.default_rng(3).uniform(50.0, 99.0, size=40)
        stats = run_sharded_collection(
            make_oracle("DE", 5, 1.0),
            np.arange(40) % 5,
            num_shards=3,
            chunk_size=7,
            rng=1,
            timestamps=ts,
        )
        assert stats.event_span == (float(ts.min()), float(ts.max()))
        assert merge_event_spans(s.event_span for s in stats.shards) == (
            stats.event_span
        )

    def test_sharded_collection_without_timestamps_has_no_span(self):
        from repro.core import make_oracle
        from repro.protocol import run_sharded_collection

        stats = run_sharded_collection(
            make_oracle("DE", 5, 1.0),
            np.arange(40) % 5,
            num_shards=3,
            chunk_size=7,
            rng=1,
        )
        assert stats.event_span is None


class TestMergedWatermark:
    def test_empty_is_minus_inf(self):
        assert merged_watermark([]) == -math.inf

    def test_all_none_is_minus_inf(self):
        assert merged_watermark([None, None]) == -math.inf

    def test_single_shard_is_its_frontier(self):
        assert merged_watermark([42.0]) == 42.0

    def test_minimum_over_live_shards(self):
        assert merged_watermark([10.0, 3.0, 99.0]) == 3.0

    def test_stale_shard_holds_the_fleet_back(self):
        # One straggler pins the merged watermark no matter how far the
        # rest of the fleet has read.
        frontiers = [1e9, 1e9, 7.0, 1e9]
        assert merged_watermark(frontiers) == 7.0

    def test_none_shards_are_excluded(self):
        assert merged_watermark([None, 12.0, None]) == 12.0

    def test_drained_shard_reports_plus_inf(self):
        # A drained shard cannot hold anything back; all-drained fleets
        # have watermark +inf (everything seals).
        assert merged_watermark([math.inf, 5.0]) == 5.0
        assert merged_watermark([math.inf, math.inf]) == math.inf

    def test_nan_frontier_rejected(self):
        with pytest.raises(ValueError, match="NaN"):
            merged_watermark([1.0, math.nan])
