"""Unit tests for SUE and OUE unary encodings."""

import math

import numpy as np
import pytest

from repro.core.unary import OptimalUnaryEncoding, SymmetricUnaryEncoding


class TestParameters:
    def test_sue_symmetric(self):
        sue = SymmetricUnaryEncoding(8, 1.0)
        assert math.isclose(sue.p_star + sue.q_star, 1.0)
        half = math.exp(0.5)
        assert math.isclose(sue.p_star, half / (half + 1))

    def test_oue_parameters(self):
        oue = OptimalUnaryEncoding(8, 1.0)
        assert oue.p_star == 0.5
        assert math.isclose(oue.q_star, 1.0 / (math.e + 1.0))

    def test_oue_variance_formula(self):
        """OUE's f→0 variance is 4e^ε/(e^ε−1)² per user."""
        oue = OptimalUnaryEncoding(8, 1.0)
        expected = 4.0 * math.e / (math.e - 1.0) ** 2
        assert math.isclose(oue.count_variance(1), expected, rel_tol=1e-12)

    def test_oue_beats_sue(self):
        for eps in (0.5, 1.0, 2.0, 4.0):
            oue = OptimalUnaryEncoding(8, eps)
            sue = SymmetricUnaryEncoding(8, eps)
            assert oue.count_variance(100) <= sue.count_variance(100) * (1 + 1e-12)


class TestPrivatize:
    def test_report_shape(self):
        oue = OptimalUnaryEncoding(16, 1.0)
        reports = oue.privatize(np.arange(16).repeat(4), rng=3)
        assert reports.shape == (64, 16)
        assert reports.dtype == np.uint8

    def test_hot_bit_rate(self):
        oue = OptimalUnaryEncoding(8, 1.0)
        n = 40_000
        reports = oue.privatize(np.full(n, 2), rng=5)
        hot_rate = float(reports[:, 2].mean())
        cold_rate = float(reports[:, 5].mean())
        assert abs(hot_rate - 0.5) < 0.01
        assert abs(cold_rate - oue.q_star) < 0.01

    def test_sue_rates(self):
        sue = SymmetricUnaryEncoding(8, 2.0)
        n = 40_000
        reports = sue.privatize(np.full(n, 0), rng=7)
        assert abs(float(reports[:, 0].mean()) - sue.p_star) < 0.01
        assert abs(float(reports[:, 3].mean()) - sue.q_star) < 0.01


class TestAggregate:
    def test_support_counts_are_column_sums(self):
        oue = OptimalUnaryEncoding(4, 1.0)
        reports = np.asarray([[1, 0, 0, 1], [0, 1, 0, 1]], dtype=np.uint8)
        assert np.array_equal(oue.support_counts(reports), [1, 1, 0, 2])

    def test_support_counts_shape_check(self):
        oue = OptimalUnaryEncoding(4, 1.0)
        with pytest.raises(ValueError, match="shape"):
            oue.support_counts(np.zeros((3, 5), dtype=np.uint8))

    def test_estimate_frequencies_postprocess_modes(self):
        oue = OptimalUnaryEncoding(8, 1.0)
        values = np.arange(8).repeat(500)
        reports = oue.privatize(values, rng=11)
        raw = oue.estimate_frequencies(reports)
        clip = oue.estimate_frequencies(reports, postprocess="clip")
        normsub = oue.estimate_frequencies(reports, postprocess="normsub")
        assert math.isclose(clip.sum(), 1.0)
        assert math.isclose(normsub.sum(), 1.0)
        assert np.all(clip >= 0)
        assert np.all(normsub >= 0)
        # raw is unbiased but unnormalized
        assert abs(raw.sum() - 1.0) < 0.2

    def test_unknown_postprocess_rejected(self):
        oue = OptimalUnaryEncoding(8, 1.0)
        reports = oue.privatize(np.arange(8), rng=1)
        with pytest.raises(ValueError, match="unknown postprocess"):
            oue.estimate_frequencies(reports, postprocess="bogus")


class TestBitMarginals:
    def test_values(self):
        oue = OptimalUnaryEncoding(5, 1.0)
        marg = oue.bit_marginals(3)
        assert marg[3] == oue.p_star
        assert np.all(marg[[0, 1, 2, 4]] == oue.q_star)

    def test_rejects_out_of_domain(self):
        oue = OptimalUnaryEncoding(5, 1.0)
        with pytest.raises(ValueError):
            oue.bit_marginals(5)

    def test_log_likelihood_finite(self):
        oue = OptimalUnaryEncoding(6, 1.0)
        reports = oue.privatize(np.full(100, 1), rng=13)
        ll = oue.log_likelihood(reports, 1)
        assert np.all(np.isfinite(ll))
        assert ll.shape == (100,)


class TestConfidence:
    def test_halfwidth_scaling(self):
        oue = OptimalUnaryEncoding(8, 1.0)
        w1 = oue.confidence_halfwidth(10_000)
        w2 = oue.confidence_halfwidth(40_000)
        assert math.isclose(w2 / w1, 2.0, rel_tol=1e-9)

    def test_tighter_alpha_wider_interval(self):
        oue = OptimalUnaryEncoding(8, 1.0)
        assert oue.confidence_halfwidth(1000, alpha=0.01) > oue.confidence_halfwidth(
            1000, alpha=0.1
        )

    def test_alpha_validation(self):
        oue = OptimalUnaryEncoding(8, 1.0)
        with pytest.raises(ValueError):
            oue.confidence_halfwidth(1000, alpha=0.0)
