"""Cross-mechanism statistical correctness: unbiasedness and variance.

For every frequency oracle we check, under fixed seeds:

* the count estimate of every value is within 5σ of its truth
  (σ = the oracle's own analytical standard deviation), and
* the *empirical* variance across repetitions matches the analytical
  formula within a generous but meaningful band.

Together these pin both the estimator algebra and the variance bookkeeping
that the tutorial's statistical toolkit (Section 1.1) is about.
"""

import numpy as np
import pytest

from repro.core import ORACLE_REGISTRY, make_oracle
from repro.workloads import sample_zipf, true_counts

D = 32
N = 20_000


@pytest.mark.parametrize("name", list(ORACLE_REGISTRY))
@pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0])
def test_counts_within_5_sigma(name, epsilon, small_population):
    oracle = make_oracle(name, 16, epsilon)
    values, counts = small_population
    reports = oracle.privatize(values, rng=101)
    est = oracle.estimate_counts(reports)
    sigma = oracle.count_stddev(values.shape[0], f=float(counts.max() / values.shape[0]))
    assert est.shape == (16,)
    assert np.all(np.abs(est - counts) < 5.0 * sigma), (
        f"{name} ε={epsilon}: max dev {np.abs(est - counts).max():.1f} vs 5σ="
        f"{5 * sigma:.1f}"
    )


@pytest.mark.parametrize("name", list(ORACLE_REGISTRY))
def test_empirical_variance_matches_analytical(name):
    """Repeat the same population 30 times; compare var of a rare value."""
    epsilon = 1.0
    oracle = make_oracle(name, D, epsilon)
    values, _ = sample_zipf(D, 4000, rng=55)
    counts = true_counts(values, D)
    target = D - 1  # rarest value under Zipf
    f = counts[target] / values.shape[0]
    estimates = []
    for rep in range(30):
        reports = oracle.privatize(values, rng=1000 + rep)
        estimates.append(oracle.estimate_counts(reports)[target])
    empirical_var = float(np.var(estimates, ddof=1))
    analytical = oracle.count_variance(values.shape[0], f=float(f))
    # 30 samples of a variance: chi-square band ≈ ±60% covers >5σ.
    assert 0.35 * analytical < empirical_var < 2.2 * analytical, (
        f"{name}: empirical {empirical_var:.1f} vs analytical {analytical:.1f}"
    )


@pytest.mark.parametrize("name", list(ORACLE_REGISTRY))
def test_estimates_sum_near_n(name, small_population):
    """Unbiased estimators should nearly preserve total mass."""
    values, _ = small_population
    oracle = make_oracle(name, 16, 1.0)
    reports = oracle.privatize(values, rng=7)
    total = oracle.estimate_counts(reports).sum()
    sigma_total = oracle.count_stddev(values.shape[0]) * np.sqrt(16)
    assert abs(total - values.shape[0]) < 6 * sigma_total


def test_variance_ordering_matches_theory():
    """At d ≫ e^ε: OUE ≈ OLH < SUE < SHE and DE is the worst."""
    from repro.core import analytical_variances

    var = analytical_variances(domain_size=256, epsilon=1.0, n=10_000)
    assert var["OUE"] <= var["SUE"]
    assert abs(var["OUE"] - var["OLH"]) / var["OUE"] < 0.15
    assert var["SUE"] < var["SHE"]
    assert var["DE"] > var["OUE"] * 5


def test_variance_de_scales_linearly_with_domain():
    from repro.core import analytical_variances

    v_small = analytical_variances(64, 1.0, 10_000)["DE"]
    v_big = analytical_variances(512, 1.0, 10_000)["DE"]
    assert 6 < v_big / v_small < 10  # ≈ 8× for 8× the domain


def test_variance_oue_flat_in_domain():
    from repro.core import analytical_variances

    v_small = analytical_variances(64, 1.0, 10_000)["OUE"]
    v_big = analytical_variances(512, 1.0, 10_000)["OUE"]
    assert abs(v_big - v_small) / v_small < 1e-9


def test_variance_decreases_with_epsilon():
    for name in ORACLE_REGISTRY:
        v1 = make_oracle(name, 64, 0.5).count_variance(1000)
        v2 = make_oracle(name, 64, 2.0).count_variance(1000)
        assert v2 < v1, name


@pytest.mark.parametrize("name", list(ORACLE_REGISTRY))
def test_privatize_accepts_int_seed_and_generator(name):
    oracle = make_oracle(name, 8, 1.0)
    values = np.arange(8).repeat(10)
    r1 = oracle.privatize(values, rng=3)
    r2 = oracle.privatize(values, rng=np.random.default_rng(3))
    e1 = oracle.estimate_counts(r1)
    e2 = oracle.estimate_counts(r2)
    assert np.allclose(e1, e2)


@pytest.mark.parametrize("name", list(ORACLE_REGISTRY))
def test_privatize_rejects_out_of_domain(name):
    oracle = make_oracle(name, 8, 1.0)
    with pytest.raises(ValueError):
        oracle.privatize(np.asarray([0, 8]), rng=1)


@pytest.mark.parametrize("name", ["OLH", "HR"])
def test_candidate_restricted_estimation_matches_full(name, small_population):
    values, _ = small_population
    oracle = make_oracle(name, 16, 1.0)
    reports = oracle.privatize(values, rng=31)
    full = oracle.estimate_counts(reports)
    cands = np.asarray([0, 3, 7, 15])
    restricted = oracle.estimate_counts_for(reports, cands)
    assert np.allclose(full[cands], restricted, atol=1e-6)
