"""Property tests for the non-destructive accumulator contract.

Three promises every accumulator in the repo makes (core oracles *and*
the system stacks), checked here for arbitrary shardings:

* ``finalize()`` is pure and idempotent — repeated calls agree bitwise
  and the state keeps absorbing/merging afterwards;
* ``merge(other)`` leaves ``other`` bitwise unchanged (compared through
  the wire format, which captures the complete state);
* ``from_bytes(to_bytes(acc))`` round-trips to identical estimates, and
  payloads from differently configured producers are rejected.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimation import ORACLE_REGISTRY, make_oracle
from repro.systems.apple import CountMeanSketch, HadamardCountMeanSketch
from repro.systems.apple.cms import CmsReports, HcmsReports
from repro.systems.microsoft import DBitFlip, OneBitMean
from repro.systems.microsoft.dbitflip import DBitFlipReports
from repro.systems.rappor import RapporAggregator, RapporParams, privatize_population


@pytest.mark.parametrize("name", sorted(ORACLE_REGISTRY))
@given(
    report_seed=st.integers(0, 2**31),
    split=st.integers(1, 119),
)
@settings(max_examples=8, deadline=None)
def test_core_accumulator_contract(name, slice_reports, report_seed, split):
    oracle = make_oracle(name, 9, 1.3)
    values = np.random.default_rng(report_seed).integers(0, 9, size=120)
    reports = oracle.privatize(values, rng=report_seed)
    whole = oracle.estimate_counts(reports)

    mask = np.zeros(120, dtype=bool)
    mask[:split] = True
    a = oracle.accumulator().absorb(slice_reports(reports, mask))
    b = oracle.accumulator().absorb(slice_reports(reports, ~mask))

    # finalize before the merge must not corrupt a's state...
    pre = a.finalize()
    assert np.array_equal(pre, a.finalize())

    b_wire = b.to_bytes()
    a.merge(b)
    # ...merge must not touch b...
    assert b.to_bytes() == b_wire
    assert b.n_absorbed == 120 - split

    # ...and the merged state finalizes (twice, identically) to the batch.
    out = a.finalize()
    assert np.array_equal(out, a.finalize())
    assert np.array_equal(out, whole)

    # Wire round-trip: identical estimates and count.
    restored = oracle.accumulator().from_bytes(a.to_bytes())
    assert restored.n_absorbed == 120
    assert np.array_equal(restored.finalize(), out)

    # copy() is independent: absorbing into the copy leaves the original.
    dup = a.copy()
    dup.absorb(slice_reports(reports, mask))
    assert np.array_equal(a.finalize(), out)
    assert dup.n_absorbed == 120 + split


@pytest.mark.parametrize("name", sorted(ORACLE_REGISTRY))
def test_serialization_rejects_mismatched_configs(name):
    oracle = make_oracle(name, 9, 1.3)
    other_eps = make_oracle(name, 9, 2.6)
    other_dom = make_oracle(name, 12, 1.3)
    payload = oracle.accumulator().absorb(
        oracle.privatize(np.arange(9), rng=1)
    ).to_bytes()
    with pytest.raises(ValueError):
        other_eps.accumulator().from_bytes(payload)
    with pytest.raises(ValueError):
        other_dom.accumulator().from_bytes(payload)
    # A non-empty receiver must refuse to be overwritten.
    busy = oracle.accumulator().absorb(oracle.privatize(np.arange(9), rng=2))
    with pytest.raises(ValueError):
        busy.from_bytes(payload)
    with pytest.raises(ValueError):
        oracle.accumulator().from_bytes(b"not an accumulator payload")


def test_unpack_rejects_header_missing_fields_as_valueerror():
    # A payload whose header parses as JSON but lacks required fields
    # must reject as malformed (ValueError), never escape as KeyError —
    # combiners catch ValueError to drop bad remote summaries.
    import json as _json
    import struct

    from repro.core.serialization import MAGIC, WIRE_VERSION, unpack_accumulator_state

    header = _json.dumps({"kind": "PureAccumulator"}).encode("utf-8")
    payload = struct.pack("<4sBI", MAGIC, WIRE_VERSION, len(header)) + header
    with pytest.raises(ValueError, match="missing required fields"):
        unpack_accumulator_state(payload)


def _system_cases():
    """(label, accumulator factory, report batch, slicer) per system stack."""
    gen = np.random.default_rng(101)

    cms = CountMeanSketch(300, 2.0, k=4, m=64, master_seed=3)
    cms_reports = cms.privatize(gen.integers(0, 300, 800), rng=4)

    hcms = HadamardCountMeanSketch(300, 2.0, k=4, m=64, master_seed=3)
    hcms_reports = hcms.privatize(gen.integers(0, 300, 800), rng=5)

    params = RapporParams(num_bits=32, num_hashes=2, num_cohorts=4)
    rappor = RapporAggregator(params, 6)
    cohorts, bits = privatize_population(
        params, gen.integers(0, 20, 600), 6, rng=7
    )

    db = DBitFlip(num_buckets=24, d=6, epsilon=1.0)
    db_reports = db.privatize(gen.integers(0, 24, 700), rng=8)

    ob = OneBitMean(50.0, 1.0)
    ob_bits = ob.privatize(gen.uniform(0, 50, 500), rng=9)

    return [
        (
            "cms",
            cms.accumulator,
            cms_reports,
            lambda r, m: CmsReports(
                hash_indices=r.hash_indices[m], rows=r.rows[m]
            ),
        ),
        (
            "hcms",
            hcms.accumulator,
            hcms_reports,
            lambda r, m: HcmsReports(
                hash_indices=r.hash_indices[m], coords=r.coords[m], bits=r.bits[m]
            ),
        ),
        (
            "rappor",
            rappor.accumulator,
            (cohorts, bits),
            lambda r, m: (r[0][m], r[1][m]),
        ),
        (
            "dbitflip",
            db.accumulator,
            db_reports,
            lambda r, m: DBitFlipReports(
                bucket_indices=r.bucket_indices[m], bits=r.bits[m]
            ),
        ),
        ("onebit", ob.accumulator, ob_bits, lambda r, m: r[m]),
    ]


_SYSTEM_CASES = _system_cases()  # built once; parametrize + ids share it


@pytest.mark.parametrize(
    "label,factory,reports,slicer",
    _SYSTEM_CASES,
    ids=[c[0] for c in _SYSTEM_CASES],
)
def test_system_accumulator_contract(label, factory, reports, slicer):
    if isinstance(reports, tuple):
        n = reports[0].shape[0]
    else:
        n = len(reports)
    mask = np.random.default_rng(11).random(n) < 0.5

    whole = factory().absorb(reports).finalize()
    a = factory().absorb(slicer(reports, mask))
    b = factory().absorb(slicer(reports, ~mask))

    b_wire = b.to_bytes()
    a.merge(b)
    assert b.to_bytes() == b_wire  # merge left its argument untouched

    out = a.finalize()
    assert np.array_equal(out, a.finalize())  # idempotent
    assert np.array_equal(out, whole)  # integer tallies: bitwise

    restored = factory().from_bytes(a.to_bytes())
    assert restored.n_absorbed == n
    assert np.array_equal(restored.finalize(), out)

    dup = a.copy()
    dup.absorb(slicer(reports, mask))
    assert np.array_equal(a.finalize(), out)  # copy is independent


def test_system_serialization_rejects_mismatched_configs():
    a = CountMeanSketch(100, 2.0, k=4, m=64, master_seed=1)
    b = CountMeanSketch(100, 2.0, k=4, m=64, master_seed=2)
    payload = a.accumulator().absorb(
        a.privatize(np.arange(100), rng=1)
    ).to_bytes()
    with pytest.raises(ValueError):
        b.accumulator().from_bytes(payload)
    # Cross-kind hydration is refused even before configs are compared.
    hcms = HadamardCountMeanSketch(100, 2.0, k=4, m=64, master_seed=1)
    with pytest.raises(ValueError):
        hcms.accumulator().from_bytes(payload)
