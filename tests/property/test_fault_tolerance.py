"""Property tests: crashes and dead workers are bit-invisible or accounted.

Two fleet-level fault claims from the service design, checked against
the pure cores for every registered oracle and every system stack:

1. **Crash-restore bit-identity.** A combiner SIGKILLed between
   receiving a ship and acking it, restarted from its last durable
   checkpoint, and fed at-least-once redelivery (everything the
   checkpoint may have missed, plus overlap) produces **bit-identical**
   estimates to the crash-free run — at *any* checkpoint cadence,
   because per-member dedup survives the checkpoint and drops exactly
   the overlap.

2. **Eviction loss invariant.** A worker that goes silent mid-stream is
   lease-evicted: the merged watermark stops waiting on its frontier,
   its undelivered reports are counted ``lost``, and the fleet
   accounting stays exact — ``absorbed + late + lost == n`` with
   ``degraded=True``.  Leases run on caller-supplied logical time here,
   so the property is deterministic.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimation import ORACLE_REGISTRY, make_oracle
from repro.core.timed import slice_report_batch
from repro.protocol import CombinerCore, ShardFolder
from repro.systems.apple import CountMeanSketch, HadamardCountMeanSketch
from repro.systems.microsoft import DBitFlip, OneBitMean
from repro.systems.rappor import RapporAggregator, RapporParams, privatize_population

N_USERS = 120
CHUNK = 24
NUM_WORKERS = 2


def _chunk_envelopes(reports, n):
    return [
        (f"e{i}", slice_report_batch(reports, np.arange(s, min(s + CHUNK, n))))
        for i, s in enumerate(range(0, n, CHUNK))
    ]


def _fold_ships(oracle, envelopes):
    """Fold envelopes through per-worker folders; return (worker, ship)."""
    folders = [ShardFolder(oracle, worker_id=w) for w in range(NUM_WORKERS)]
    ships = []
    for i, (eid, batch) in enumerate(envelopes):
        ship = folders[i % NUM_WORKERS].offer(eid, batch)
        if ship is not None:
            ships.append(ship)
    return ships


def _crash_free(oracle, ships):
    core = CombinerCore(oracle, num_workers=NUM_WORKERS)
    for w in range(NUM_WORKERS):
        core.register(w)
    for ship in ships:
        core.receive(ship)
    for w in range(NUM_WORKERS):
        core.drain(w)
    return core.result()


def _crash_and_restore(oracle, ships, *, crash_at, cadence):
    """Replay the daemon's crash window against the pure core.

    The first combiner receives ships ``1..crash_at`` and checkpoints
    after every ``cadence``-th ship; the crash fires *after* receiving
    ship ``crash_at`` but *before* checkpointing or acking it — the
    recovery-critical window.  The successor restores the last durable
    checkpoint and the clients resend at-least-once: every ship past
    the last checkpoint (at-risk + unacked) *plus* the final
    checkpointed ship again (redelivery overlap dedup must drop).
    """
    core = CombinerCore(oracle, num_workers=NUM_WORKERS)
    for w in range(NUM_WORKERS):
        core.register(w)
    blob = core.to_checkpoint()  # durable state before any ship
    covered = 0
    for j, ship in enumerate(ships[:crash_at], start=1):
        core.receive(ship)
        if j < crash_at and j % cadence == 0:
            blob = core.to_checkpoint()
            covered = j
    del core  # SIGKILL: everything not in `blob` is gone

    restored = CombinerCore.from_checkpoint(oracle, blob)
    assert restored.ships_received == covered
    resend_from = max(0, covered - 1)  # overlap: dedup drops the repeat
    for ship in ships[resend_from:]:
        restored.receive(ship)
    for w in range(NUM_WORKERS):
        restored.drain(w)
    return restored.result()


@pytest.mark.parametrize("name", sorted(ORACLE_REGISTRY))
@given(
    report_seed=st.integers(0, 2**31),
    crash_frac=st.floats(0.1, 1.0),
    cadence=st.integers(1, 4),
)
@settings(max_examples=6, deadline=None)
def test_crash_restore_bit_identical_for_core_oracles(
    name, report_seed, crash_frac, cadence
):
    oracle = make_oracle(name, 9, 1.3)
    values = np.random.default_rng(report_seed).integers(0, 9, size=N_USERS)
    reports = oracle.privatize(values, rng=report_seed)
    ships = _fold_ships(oracle, _chunk_envelopes(reports, N_USERS))
    crash_at = max(1, int(round(crash_frac * len(ships))))

    clean = _crash_free(oracle, ships)
    crashed = _crash_and_restore(
        oracle, ships, crash_at=crash_at, cadence=cadence
    )

    assert np.array_equal(clean.estimated_counts, crashed.estimated_counts)
    assert crashed.absorbed_reports == clean.absorbed_reports == N_USERS
    assert crashed.late_reports == 0 and crashed.lost_reports == 0
    assert not crashed.degraded
    assert np.array_equal(
        clean.estimated_counts,
        oracle.accumulator().absorb(reports).finalize(),
    )


def _system_cases():
    gen = np.random.default_rng(77)

    cms = CountMeanSketch(200, 2.0, k=4, m=64, master_seed=3)
    hcms = HadamardCountMeanSketch(200, 2.0, k=4, m=64, master_seed=3)
    params = RapporParams(num_bits=32, num_hashes=2, num_cohorts=4)
    rappor = RapporAggregator(params, 6)
    db = DBitFlip(num_buckets=24, d=6, epsilon=1.0)
    ob = OneBitMean(50.0, 1.0)

    class _Shim:
        """Duck-typed oracle: the service cores only need accumulator()."""

        def __init__(self, factory):
            self.accumulator = factory

    return [
        (
            "cms",
            _Shim(cms.accumulator),
            cms.privatize(gen.integers(0, 200, N_USERS), rng=4),
        ),
        (
            "hcms",
            _Shim(hcms.accumulator),
            hcms.privatize(gen.integers(0, 200, N_USERS), rng=5),
        ),
        (
            "rappor",
            _Shim(rappor.accumulator),
            privatize_population(
                params, gen.integers(0, 6, N_USERS), 6, rng=7
            ),
        ),
        (
            "dbitflip",
            _Shim(db.accumulator),
            db.privatize(gen.integers(0, 24, N_USERS), rng=8),
        ),
        (
            "onebit",
            _Shim(ob.accumulator),
            ob.privatize(gen.uniform(0, 50, N_USERS), rng=9),
        ),
    ]


_SYSTEM_CASES = _system_cases()


@pytest.mark.parametrize(
    "label,shim,reports", _SYSTEM_CASES, ids=[c[0] for c in _SYSTEM_CASES]
)
@given(crash_frac=st.floats(0.1, 1.0), cadence=st.integers(1, 4))
@settings(max_examples=6, deadline=None)
def test_crash_restore_bit_identical_for_system_stacks(
    label, shim, reports, crash_frac, cadence
):
    ships = _fold_ships(shim, _chunk_envelopes(reports, N_USERS))
    crash_at = max(1, int(round(crash_frac * len(ships))))
    clean = _crash_free(shim, ships)
    crashed = _crash_and_restore(
        shim, ships, crash_at=crash_at, cadence=cadence
    )
    assert np.array_equal(clean.estimated_counts, crashed.estimated_counts)
    assert crashed.absorbed_reports == N_USERS
    assert not crashed.degraded
    assert np.array_equal(
        clean.estimated_counts,
        shim.accumulator().absorb(reports).finalize(),
    )


@given(
    report_seed=st.integers(0, 2**31),
    die_after=st.integers(0, 2),
)
@settings(max_examples=10, deadline=None)
def test_eviction_loss_invariant(report_seed, die_after):
    """A silent worker is evicted; absorbed + late + lost == n, degraded."""
    oracle = make_oracle("OUE", 9, 1.3)
    values = np.random.default_rng(report_seed).integers(0, 9, size=N_USERS)
    reports = oracle.privatize(values, rng=report_seed)
    envelopes = _chunk_envelopes(reports, N_USERS)

    core = CombinerCore(
        oracle, num_workers=NUM_WORKERS, lease_timeout=10.0, now=0.0
    )
    folders = [ShardFolder(oracle, worker_id=w) for w in range(NUM_WORKERS)]
    for w in range(NUM_WORKERS):
        core.register(w, now=0.0)

    # Worker 1 ships its first `die_after` envelopes, then dies silently.
    shipped_rows = 0
    dead_rows = 0
    for i, (eid, batch) in enumerate(envelopes):
        w = i % NUM_WORKERS
        rows = len(batch) if hasattr(batch, "__len__") else None
        if rows is None:
            from repro.core.timed import batch_length

            rows = batch_length(batch)
        if w == 1 and i // NUM_WORKERS >= die_after:
            dead_rows += rows
            continue
        ship = folders[w].offer(eid, batch)
        assert ship is not None
        core.receive(ship, now=1.0)
        if w == 1:
            shipped_rows += rows
    core.drain(0, now=1.0)

    # Lease sweep well past expiry: worker 1 must be evicted, and the
    # fleet is then fully drained-or-evicted without worker 1's drain.
    evicted = core.check_leases(now=100.0)
    assert evicted == (1,)
    assert core.all_drained
    core.count_lost(dead_rows)

    result = core.result()
    assert result.degraded and result.evicted_workers == (1,)
    assert result.lost_reports == dead_rows
    assert (
        result.absorbed_reports + result.late_reports + result.lost_reports
        == N_USERS
    )
    # The dead worker's shipped prefix still counts — nothing double-counted.
    assert result.absorbed_reports == N_USERS - dead_rows

    # A healed worker (late heartbeat) clears the watermark hold but the
    # round stays marked degraded: the estimates were built under loss.
    core.heartbeat(1, float("inf"), now=101.0)
    assert core.degraded
