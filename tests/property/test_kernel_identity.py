"""Bit-identity of the fused decode kernels against the reference paths.

The kernel layer (``repro.util.kernels``) replaced the aggregator hot
paths wholesale — that is only safe because every fused path computes
the *same integers* as the ``_reference_*`` implementation it displaced.
This suite pins that promise:

* the hashing substrate (premix, elementwise, cross, seeded family)
  over adversarial edge values — 0, 2⁶³−1, 2⁶⁴−1, multiples of p;
* the oracle support paths (OLH/BLH fused kernel, bit-sliced Hadamard
  decode, unary integer column sums) including empty report batches,
  single-candidate lists and the BLH ``g = 2`` extreme — the bit-sliced
  tier is pinned against both the retained matmul tier and the direct
  per-candidate formula over edge shapes (d=1, single report,
  non-power-of-two candidate counts, constant sign patterns);
* estimates unchanged whether the kernel plan cache is cold, warm, or
  disabled (``REPRO_KERNEL_PLAN_CACHE=0``), for every registered oracle
  and the heavy-hitter stacks;
* the sketch/Bloom decode paths (CMS tiled reads, chunked design
  matrices) across chunk boundaries;
* estimates end to end: for every registered oracle and system stack,
  the estimate is unchanged when the kernels' tile thread pool fans out
  (integer partial sums are schedule-independent).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BinaryLocalHashing, OptimalLocalHashing
from repro.core.estimation import ORACLE_REGISTRY, make_oracle
from repro.core.hadamard import HadamardResponse
from repro.core.mechanism import HashedReports
from repro.core.unary import OptimalUnaryEncoding, SymmetricUnaryEncoding
from repro.systems.apple import CountMeanSketch, HadamardCountMeanSketch
from repro.systems.microsoft import DBitFlip, OneBitMean
from repro.systems.rappor import RapporAggregator, RapporParams, privatize_population
from repro.util.bloom import BloomFilter
from repro.util.hashing import (
    MERSENNE_P,
    SeededHashFamily,
    _premix,
    _reference_hash_cross,
    _reference_hash_elementwise,
    _reference_premix,
    hash_cross,
    hash_elementwise,
    hash_matrix,
)

P = int(MERSENNE_P)

#: Raw 64-bit inputs that stress every reduction boundary.
EDGE_INPUTS = np.array(
    [0, 1, P - 1, P, P + 1, 2 * P, 7 * P, 2**31, 2**32, 2**62,
     2**63 - 1, 2**63, 2**64 - 1, (2**64 - 1) // P * P],
    dtype=np.uint64,
)


# -- hashing substrate -----------------------------------------------------


def test_premix_matches_reference_on_edges():
    assert np.array_equal(_premix(EDGE_INPUTS), _reference_premix(EDGE_INPUTS))


@given(seed=st.integers(0, 2**32))
@settings(max_examples=20, deadline=None)
def test_premix_matches_reference_on_random(seed):
    x = np.random.default_rng(seed).integers(
        0, 2**63, size=256, dtype=np.int64
    ).astype(np.uint64) * np.uint64(2) + np.uint64(seed % 2)
    assert np.array_equal(_premix(x), _reference_premix(x))


@pytest.mark.parametrize("g", [1, 2, 8, 1023])
def test_hash_elementwise_matches_reference(g):
    seeds = EDGE_INPUTS.copy()
    values = EDGE_INPUTS[::-1].copy()
    assert np.array_equal(
        hash_elementwise(seeds, values, g),
        _reference_hash_elementwise(seeds, values, g),
    )


@pytest.mark.parametrize("g", [2, 8])
def test_hash_cross_matches_reference(g):
    rng = np.random.default_rng(g)
    seeds = np.concatenate(
        [EDGE_INPUTS, rng.integers(0, 2**63, size=50).astype(np.uint64)]
    )
    values = np.concatenate(
        [EDGE_INPUTS, rng.integers(0, 2**63, size=9).astype(np.uint64)]
    )
    assert np.array_equal(
        hash_cross(seeds, values, g), _reference_hash_cross(seeds, values, g)
    )
    # chunk boundaries must not change anything
    assert np.array_equal(
        hash_cross(seeds, values, g, chunk=16),
        _reference_hash_cross(seeds, values, g),
    )


def test_hash_matrix_matches_reference():
    seeds = EDGE_INPUTS
    assert np.array_equal(
        hash_matrix(seeds, 17, 8),
        _reference_hash_cross(seeds, np.arange(17, dtype=np.uint64), 8),
    )


@pytest.mark.parametrize("k,m", [(1, 2), (2, 64), (8, 1024)])
def test_seeded_family_matches_reference(k, m):
    family = SeededHashFamily(k, m, master_seed=99)
    values = np.concatenate(
        [EDGE_INPUTS, np.arange(40, dtype=np.uint64) * np.uint64(P)]
    )
    ref = family._reference_apply_all(values)
    assert np.array_equal(family.apply_all(values), ref)
    # chunking over values must be invisible
    assert np.array_equal(family.apply_all(values, chunk=3), ref)
    # per-function and selected paths agree with the matrix
    for j in range(k):
        assert np.array_equal(family.apply(j, values), ref[j])
    idx = np.arange(values.shape[0]) % k
    assert np.array_equal(
        family.apply_selected(idx, values),
        ref[idx, np.arange(values.shape[0])],
    )


def test_seeded_family_empty_batch():
    family = SeededHashFamily(3, 16, master_seed=1)
    empty = np.array([], dtype=np.int64)
    assert family.apply_all(empty).shape == (3, 0)


# -- oracle support paths --------------------------------------------------


def _hashed_reports(seeds, values):
    return HashedReports(
        seeds=np.asarray(seeds, dtype=np.uint64),
        values=np.asarray(values, dtype=np.int64),
    )


class TestLocalHashingIdentity:
    @pytest.mark.parametrize("oracle_cls,d", [
        (OptimalLocalHashing, 64),
        (OptimalLocalHashing, 2),
        (BinaryLocalHashing, 64),  # the g = 2 extreme
    ])
    @given(seed=st.integers(0, 2**32))
    @settings(max_examples=10, deadline=None)
    def test_support_counts_match_reference(self, oracle_cls, d, seed):
        oracle = oracle_cls(d, 1.7)
        rng = np.random.default_rng(seed)
        values = rng.integers(0, d, size=300)
        reports = oracle.privatize(values, rng=rng)
        cands = np.arange(d, dtype=np.int64)
        assert np.array_equal(
            oracle.support_counts_for(reports, cands),
            oracle._reference_support_counts_for(reports, cands),
        )

    def test_edge_seeds_and_single_candidate(self):
        oracle = OptimalLocalHashing(5, 2.0)
        # seeds at the uint64 extremes and multiples of p — values the
        # client path never draws but the wire may carry
        reports = _hashed_reports(
            EDGE_INPUTS, np.arange(EDGE_INPUTS.shape[0]) % oracle.g
        )
        for cands in (np.array([0]), np.array([4]), np.arange(5)):
            assert np.array_equal(
                oracle.support_counts_for(reports, cands),
                oracle._reference_support_counts_for(reports, cands),
            )

    def test_empty_reports(self):
        oracle = BinaryLocalHashing(7, 1.0)
        empty = _hashed_reports(
            np.array([], dtype=np.uint64), np.array([], dtype=np.int64)
        )
        out = oracle.support_counts_for(empty, np.arange(7))
        assert np.array_equal(out, np.zeros(7))
        assert np.array_equal(
            out, oracle._reference_support_counts_for(empty, np.arange(7))
        )


class TestHadamardIdentity:
    @given(seed=st.integers(0, 2**32))
    @settings(max_examples=10, deadline=None)
    def test_candidate_support_matches_reference(self, seed):
        oracle = HadamardResponse(13, 1.4)
        rng = np.random.default_rng(seed)
        reports = oracle.privatize(rng.integers(0, 13, size=400), rng=rng)
        cands = np.array([0, 1, 7, 12])
        assert np.array_equal(
            oracle.support_counts_for(reports, cands),
            oracle._reference_support_counts_for(reports, cands),
        )

    def test_empty_reports(self):
        oracle = HadamardResponse(4, 1.0)
        from repro.core.mechanism import IndexedBitReports

        empty = IndexedBitReports(
            indices=np.array([], dtype=np.int64), bits=np.array([])
        )
        assert np.array_equal(
            oracle.support_counts_for(empty, np.arange(4)),
            oracle._reference_support_counts_for(empty, np.arange(4)),
        )


@pytest.mark.parametrize("oracle_cls", [SymmetricUnaryEncoding, OptimalUnaryEncoding])
def test_unary_support_matches_reference(oracle_cls):
    oracle = oracle_cls(9, 1.2)
    reports = oracle.privatize(
        np.random.default_rng(2).integers(0, 9, size=501), rng=3
    )
    assert np.array_equal(
        oracle.support_counts(reports), oracle._reference_support_counts(reports)
    )
    empty = np.zeros((0, 9), dtype=np.uint8)
    assert np.array_equal(
        oracle.support_counts(empty), oracle._reference_support_counts(empty)
    )


# -- sketch / Bloom decode paths -------------------------------------------


@pytest.mark.parametrize("sketch_cls", [CountMeanSketch, HadamardCountMeanSketch])
def test_sketch_candidate_decode_matches_reference(sketch_cls, monkeypatch):
    oracle = sketch_cls(200, 1.5, k=4, m=64, master_seed=5)
    reports = oracle.privatize(
        np.random.default_rng(6).integers(0, 200, size=300), rng=7
    )
    acc = oracle.accumulator().absorb(reports)
    sketch = acc.sketch()
    cands = np.arange(200, dtype=np.int64)
    expected = oracle._reference_estimate_from_sketch(sketch, 300, cands)
    assert np.array_equal(
        oracle._estimate_from_sketch(sketch, 300, cands), expected
    )
    # force many tiny tiles: the tiling must be invisible
    monkeypatch.setattr(type(oracle), "_DECODE_TILE", 7)
    assert np.array_equal(
        oracle._estimate_from_sketch(sketch, 300, cands), expected
    )


def test_bloom_encode_batch_chunking_is_invisible(monkeypatch):
    bloom = BloomFilter(32, 3, seed=4)
    values = np.arange(500, dtype=np.int64)
    whole = bloom.encode_batch(values)
    monkeypatch.setattr(BloomFilter, "_BATCH_CHUNK", 33)
    assert np.array_equal(bloom.encode_batch(values), whole)
    # and each row still equals the single-value encoding
    for v in (0, 33, 499):
        assert np.array_equal(whole[v], bloom.encode(v))


# -- bit-sliced Hadamard decode --------------------------------------------


def _direct_hadamard_counts(idx, bits, cands):
    from repro.util.wht import hadamard_entries

    n = idx.shape[0]
    out = np.empty(cands.shape[0])
    for pos, cand in enumerate(cands):
        entries = hadamard_entries(idx, np.uint64(cand))
        out[pos] = n / 2.0 + 0.5 * float(np.asarray(bits) @ entries)
    return out


class TestBitSlicedHadamardIdentity:
    """Bit-sliced decode == matmul tier == direct formula, bit for bit."""

    @pytest.mark.parametrize(
        "n,d,order",
        [
            (1, 1, 2),        # single report, single candidate
            (1, 4, 64),       # single report
            (64, 1, 1 << 16), # single candidate, wide order
            (100, 3, 8),      # non-power-of-two candidate count
            (777, 129, 1 << 16),
            (3000, 100, 1 << 20),
        ],
    )
    def test_edge_shapes_match_matmul_and_direct(self, n, d, order):
        from repro.util.kernels import (
            _matmul_hadamard_support_counts,
            hadamard_support_counts,
        )

        rng = np.random.default_rng(n * 7919 + d)
        idx = rng.integers(0, order, size=n).astype(np.uint64)
        bits = rng.choice([-1.0, 1.0], size=n)
        cands = rng.choice(order, size=d, replace=False).astype(np.uint64)
        sliced = hadamard_support_counts(idx, bits, cands)
        assert np.array_equal(
            sliced, _matmul_hadamard_support_counts(idx, bits, cands)
        )
        assert np.array_equal(sliced, _direct_hadamard_counts(idx, bits, cands))

    @pytest.mark.parametrize("sign", [1.0, -1.0])
    def test_constant_sign_patterns(self, sign):
        # all-ones / all-zeros (all minus-one) sign patterns hit the
        # pos-mask edge: popcount(parity & pos) is everything or nothing.
        from repro.util.kernels import (
            _matmul_hadamard_support_counts,
            hadamard_support_counts,
        )

        rng = np.random.default_rng(3)
        idx = rng.integers(0, 256, size=500).astype(np.uint64)
        bits = np.full(500, sign)
        cands = np.arange(17, dtype=np.uint64)
        sliced = hadamard_support_counts(idx, bits, cands)
        assert np.array_equal(
            sliced, _matmul_hadamard_support_counts(idx, bits, cands)
        )
        assert np.array_equal(sliced, _direct_hadamard_counts(idx, bits, cands))

    def test_zero_index_reports(self):
        # all indices 0: no active bits, every H entry is +1 — the
        # plane-free fast branch.
        from repro.util.kernels import hadamard_support_counts

        idx = np.zeros(40, dtype=np.uint64)
        bits = np.random.default_rng(5).choice([-1.0, 1.0], size=40)
        cands = np.arange(8, dtype=np.uint64)
        assert np.array_equal(
            hadamard_support_counts(idx, bits, cands),
            _direct_hadamard_counts(idx, bits, cands),
        )

    @given(seed=st.integers(0, 2**32))
    @settings(max_examples=15, deadline=None)
    def test_random_shapes_match_matmul(self, seed):
        from repro.util.kernels import (
            _matmul_hadamard_support_counts,
            hadamard_support_counts,
        )

        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 400))
        d = int(rng.integers(1, 40))
        order = 1 << int(rng.integers(1, 20))
        idx = rng.integers(0, order, size=n).astype(np.uint64)
        bits = rng.choice([-1.0, 1.0], size=n)
        cands = rng.choice(order, size=min(d, order), replace=False).astype(
            np.uint64
        )
        assert np.array_equal(
            hadamard_support_counts(idx, bits, cands),
            _matmul_hadamard_support_counts(idx, bits, cands),
        )

    def test_segmentation_is_invisible(self):
        from repro.util.kernels import hadamard_support_counts

        rng = np.random.default_rng(9)
        idx = rng.integers(0, 1 << 10, size=1000).astype(np.uint64)
        bits = rng.choice([-1.0, 1.0], size=1000)
        cands = rng.choice(1 << 10, size=33, replace=False).astype(np.uint64)
        whole = hadamard_support_counts(idx, bits, cands)
        for tile in (1, 63, 64, 65, 999):
            assert np.array_equal(
                whole,
                hadamard_support_counts(idx, bits, cands, tile_reports=tile),
            )


# -- estimates unchanged under plan caching --------------------------------


@pytest.mark.parametrize("name", sorted(ORACLE_REGISTRY))
def test_estimates_cache_independent_for_registry(name, monkeypatch):
    """Plan caching must not move any registered oracle's estimate."""
    from repro.util.kernels import kernel_plan_cache

    oracle = make_oracle(name, 12, 1.5)
    values = np.random.default_rng(33).integers(0, 12, size=400)
    reports = oracle.privatize(values, rng=34)
    cands = np.array([0, 3, 11])

    def _candidate_estimate():
        try:
            acc = oracle.accumulator(cands)
        except TypeError:  # oracle without candidate restriction (e.g. SHE)
            acc = oracle.accumulator()
        return acc.absorb(reports).finalize()

    monkeypatch.setenv("REPRO_KERNEL_PLAN_CACHE", "0")
    kernel_plan_cache.clear()
    cold = oracle.estimate_counts(reports)
    cold_cand = _candidate_estimate()
    monkeypatch.delenv("REPRO_KERNEL_PLAN_CACHE")
    warm_first = _candidate_estimate()
    warm_second = _candidate_estimate()
    assert np.array_equal(cold, oracle.estimate_counts(reports))
    assert np.array_equal(cold_cand, warm_first)
    assert np.array_equal(warm_first, warm_second)


def test_heavy_hitters_cache_independent(monkeypatch):
    """PEM/TreeHist/Bitstogram results identical with the cache disabled."""
    from repro.heavyhitters import (
        bitstogram_heavy_hitters,
        pem_heavy_hitters,
        treehist_heavy_hitters,
    )
    from repro.util.kernels import kernel_plan_cache

    values = np.random.default_rng(41).integers(0, 1 << 10, size=4000)

    def _run_all():
        return (
            pem_heavy_hitters(values, 10, 2.0, k=4, rng=5),
            treehist_heavy_hitters(values, 10, 2.0, rng=5),
            bitstogram_heavy_hitters(values, 10, 2.0, k=4, rng=5),
        )

    monkeypatch.setenv("REPRO_KERNEL_PLAN_CACHE", "0")
    kernel_plan_cache.clear()
    cold = _run_all()
    monkeypatch.delenv("REPRO_KERNEL_PLAN_CACHE")
    warm = _run_all()
    for c, w in zip(cold, warm):
        assert c.items == w.items
        assert c.counts == w.counts


# -- estimates unchanged under kernel thread fan-out -----------------------


@pytest.mark.parametrize("name", sorted(ORACLE_REGISTRY))
def test_estimates_schedule_independent_for_registry(name, monkeypatch):
    """Fanning kernel tiles across threads must not move any estimate."""
    oracle = make_oracle(name, 10, 1.5)
    values = np.random.default_rng(17).integers(0, 10, size=400)
    reports = oracle.privatize(values, rng=18)
    monkeypatch.setenv("REPRO_KERNEL_THREADS", "1")
    serial = oracle.estimate_counts(reports)
    monkeypatch.setenv("REPRO_KERNEL_THREADS", "3")
    fanned = oracle.estimate_counts(reports)
    assert np.array_equal(serial, fanned)


def test_estimates_schedule_independent_for_systems(monkeypatch):
    pytest.importorskip("scipy")  # RAPPOR decode solves NNLS
    rng = np.random.default_rng(21)
    values = rng.integers(0, 30, size=300)

    params = RapporParams(
        num_bits=16, num_hashes=2, num_cohorts=4, f=0.5, p=0.45, q=0.7
    )
    cohorts, rappor_reports = privatize_population(
        params, values, master_seed=31, rng=22
    )
    agg = RapporAggregator(params, 31)

    cms = CountMeanSketch(30, 1.5, k=4, m=32, master_seed=2)
    cms_reports = cms.privatize(values, rng=23)
    onebit = OneBitMean(29.0, 1.0)
    onebit_reports = onebit.privatize(values.astype(np.float64), rng=24)
    dbf = DBitFlip(num_buckets=8, d=2, epsilon=1.0)
    dbf_reports = dbf.privatize(values % 8, rng=25)

    def _all_estimates():
        return (
            agg.decode(cohorts, rappor_reports, np.arange(30)).estimated_counts,
            cms.estimate_counts(cms_reports),
            np.array([onebit.estimate_mean(onebit_reports)]),
            dbf.estimate_counts(dbf_reports),
        )

    monkeypatch.setenv("REPRO_KERNEL_THREADS", "1")
    serial = _all_estimates()
    monkeypatch.setenv("REPRO_KERNEL_THREADS", "3")
    fanned = _all_estimates()
    for s, f in zip(serial, fanned):
        assert np.array_equal(s, f)
