"""Property-based tests (hypothesis) on core data structures and invariants.

These check *algebraic* properties that must hold for every input, not
just the fixtures unit tests use: transform involutions, packing
round-trips, estimator linearity, composition arithmetic, projection
idempotence.
"""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.budget import PrivacySpend, compose_parallel, compose_sequential
from repro.core.estimation import ORACLE_REGISTRY, make_oracle
from repro.core.mechanism import postprocess_counts
from repro.marginals.subsets import (
    parity_characters,
    project_to_mask,
    submasks,
)
from repro.systems.rappor.association import pack_string, unpack_string
from repro.util.bloom import BloomFilter
from repro.util.hashing import SeededHashFamily, hash_elementwise
from repro.util.rng import derive_seed, per_user_seeds
from repro.util.wht import fwht, hadamard_entries, next_power_of_two
from repro.workloads.binary import pack_bits, unpack_bits

# -- WHT ---------------------------------------------------------------------


@given(
    st.integers(0, 5),
    st.lists(st.floats(-100, 100), min_size=1, max_size=32),
)
@settings(max_examples=60, deadline=None)
def test_fwht_involution(log_pad, values):
    d = next_power_of_two(max(len(values), 1)) << log_pad
    x = np.zeros(d)
    x[: len(values)] = values
    assert np.allclose(fwht(fwht(x)), d * x, atol=1e-6 * max(1.0, d))


@given(st.integers(0, 255), st.integers(0, 255))
@settings(max_examples=100, deadline=None)
def test_hadamard_entry_symmetric_and_multiplicative(i, j):
    e_ij = hadamard_entries(np.uint64(i), np.uint64(j))
    e_ji = hadamard_entries(np.uint64(j), np.uint64(i))
    assert e_ij == e_ji
    # χ_i(j)·χ_i(k) = χ_i(j XOR k) requires popcount parity additivity:
    k = i  # any k works; use i for variety
    lhs = hadamard_entries(np.uint64(i), np.uint64(j)) * hadamard_entries(
        np.uint64(i), np.uint64(k)
    )
    rhs = hadamard_entries(np.uint64(i), np.uint64(j ^ k))
    assert lhs == rhs


@given(st.lists(st.floats(-50, 50), min_size=2, max_size=64))
@settings(max_examples=60, deadline=None)
def test_fwht_parseval(values):
    d = next_power_of_two(len(values))
    x = np.zeros(d)
    x[: len(values)] = values
    assert math.isclose(
        float(np.sum(fwht(x) ** 2)), d * float(np.sum(x**2)), rel_tol=1e-9, abs_tol=1e-6
    )


# -- hashing ------------------------------------------------------------------


@given(st.integers(0, 2**63 - 1), st.integers(0, 2**62), st.integers(2, 1024))
@settings(max_examples=100, deadline=None)
def test_hash_deterministic_and_in_range(seed, value, g):
    seeds = np.asarray([seed], dtype=np.uint64)
    values = np.asarray([value], dtype=np.int64)
    h1 = hash_elementwise(seeds, values, g)
    h2 = hash_elementwise(seeds, values, g)
    assert h1 == h2
    assert 0 <= int(h1[0]) < g


@given(st.integers(1, 8), st.integers(2, 256), st.integers(0, 2**31))
@settings(max_examples=50, deadline=None)
def test_family_consistency(k, m, seed):
    fam = SeededHashFamily(k, m, seed)
    values = np.arange(20, dtype=np.int64)
    stacked = fam.apply_all(values)
    for j in range(k):
        assert np.array_equal(stacked[j], fam.apply(j, values))


@given(st.integers(0, 2**62), st.integers(0, 2**62))
@settings(max_examples=50, deadline=None)
def test_derive_seed_in_range(master, tag):
    s = derive_seed(master, tag)
    assert 0 <= s < 2**63


@given(st.integers(0, 2**60), st.integers(1, 500))
@settings(max_examples=30, deadline=None)
def test_per_user_seeds_stable_prefix(master, n):
    assert np.array_equal(per_user_seeds(master, n), per_user_seeds(master, n + 5)[:n])


# -- bloom --------------------------------------------------------------------


@given(
    st.integers(8, 256),
    st.integers(1, 4),
    st.integers(0, 1000),
    st.lists(st.integers(0, 2**40), min_size=1, max_size=30, unique=True),
)
@settings(max_examples=50, deadline=None)
def test_bloom_never_false_negative(m, h, seed, values)  :
    bloom = BloomFilter(m, h, seed)
    union = bloom.encode_batch(np.asarray(values, dtype=np.int64)).max(axis=0)
    for v in values:
        assert bloom.contains(union, int(v))


# -- budget -------------------------------------------------------------------


@given(
    st.lists(
        st.tuples(st.floats(0.01, 5.0), st.floats(0.0, 0.001)),
        min_size=0,
        max_size=10,
    )
)
@settings(max_examples=60, deadline=None)
def test_composition_algebra(pairs):
    spends = [PrivacySpend(e, d) for e, d in pairs]
    seq_e, seq_d = compose_sequential(spends)
    par_e, par_d = compose_parallel(spends)
    # parallel never exceeds sequential; both are non-negative
    assert par_e <= seq_e + 1e-12
    assert par_d <= seq_d + 1e-12
    assert seq_e >= 0 and par_e >= 0
    # order invariance (up to float summation reordering)
    rev_e, rev_d = compose_sequential(spends[::-1])
    assert math.isclose(rev_e, seq_e, rel_tol=1e-12, abs_tol=1e-15)
    assert math.isclose(rev_d, seq_d, rel_tol=1e-12, abs_tol=1e-15)


# -- postprocess ---------------------------------------------------------------


@given(st.lists(st.floats(-2, 2), min_size=2, max_size=40))
@settings(max_examples=80, deadline=None)
def test_postprocess_projections_land_on_simplex(raw):
    arr = np.asarray(raw)
    for method in ("clip", "normsub"):
        out = postprocess_counts(arr, method)
        assert math.isclose(out.sum(), 1.0, abs_tol=1e-9)
        assert np.all(out >= -1e-12)


@given(st.lists(st.floats(0.001, 1.0), min_size=2, max_size=20))
@settings(max_examples=50, deadline=None)
def test_postprocess_idempotent_on_simplex(raw):
    arr = np.asarray(raw)
    simplex = arr / arr.sum()
    for method in ("clip", "normsub"):
        out = postprocess_counts(simplex, method)
        assert np.allclose(out, simplex, atol=1e-9)


# -- subsets / packing ----------------------------------------------------------


@given(st.integers(0, 2**16 - 1))
@settings(max_examples=80, deadline=None)
def test_submasks_are_submasks(mask):
    subs = submasks(mask)
    assert len(subs) == 1 << bin(mask).count("1")
    for s in subs:
        assert s & mask == s
    assert len(set(subs)) == len(subs)


@given(st.integers(0, 2**16 - 1), st.integers(0, 2**16 - 1))
@settings(max_examples=80, deadline=None)
def test_parity_character_multiplicativity_in_mask(s1, x):
    """χ_{S}(x)·χ_{T}(x) = χ_{S XOR T}(x)."""
    s2 = (s1 * 31) & 0xFFFF
    lhs = parity_characters(np.uint64(s1), np.uint64(x)) * parity_characters(
        np.uint64(s2), np.uint64(x)
    )
    rhs = parity_characters(np.uint64(s1 ^ s2), np.uint64(x))
    assert lhs == rhs


@given(
    st.integers(1, 16),
    st.lists(st.integers(0, 2**16 - 1), min_size=1, max_size=20),
)
@settings(max_examples=60, deadline=None)
def test_project_to_mask_width(d, xs)  :
    mask = (1 << d) - 1
    arr = np.asarray([x & mask for x in xs], dtype=np.int64)
    projected = project_to_mask(arr, mask)
    assert np.array_equal(projected, arr)  # full mask = identity


@given(
    st.integers(2, 10),
    st.integers(2, 8),
    st.lists(st.integers(0, 9), min_size=2, max_size=8),
)
@settings(max_examples=80, deadline=None)
def test_pack_unpack_string_roundtrip(alphabet, _unused, symbols):
    symbols = [s % alphabet for s in symbols]
    packed = pack_string(np.asarray(symbols), alphabet)
    assert list(unpack_string(packed, alphabet, len(symbols))) == symbols


@given(st.integers(1, 20), st.integers(1, 62))
@settings(max_examples=40, deadline=None)
def test_pack_unpack_bits_roundtrip(n, d):
    gen = np.random.default_rng(n * 100 + d)
    bits = (gen.random((n, d)) < 0.5).astype(np.uint8)
    assert np.array_equal(unpack_bits(pack_bits(bits), d), bits)


# -- accumulator sharding ---------------------------------------------------------


@pytest.mark.parametrize("name", sorted(ORACLE_REGISTRY))
@given(
    num_shards=st.integers(1, 7),
    split_seed=st.integers(0, 2**31),
    report_seed=st.integers(0, 2**31),
)
@settings(max_examples=12, deadline=None)
def test_sharded_absorb_merge_matches_single_batch(
    name, slice_reports, num_shards, split_seed, report_seed
):
    """Splitting a batch into k random shards, absorbing each into its own
    accumulator and merging gives bit-identical counts to single-batch
    ``estimate_counts`` — the invariant the sharded collection pipeline
    rests on.  SHE included: its accumulator keeps the Laplace float sums
    exactly, so merge order cannot move even the last ulp.
    """
    oracle = make_oracle(name, 10, 1.1)
    gen = np.random.default_rng(split_seed)
    values = gen.integers(0, 10, size=120)
    reports = oracle.privatize(values, rng=report_seed)
    whole = oracle.estimate_counts(reports)

    assignment = gen.integers(0, num_shards, size=120)
    merged = oracle.accumulator()
    for shard in range(num_shards):
        merged.merge(
            oracle.accumulator().absorb(slice_reports(reports, assignment == shard))
        )
    out = merged.finalize()
    assert merged.n_absorbed == 120
    assert np.array_equal(out, whole)


# -- exact summation (SHE) -------------------------------------------------------


@given(
    splits=st.lists(st.integers(1, 199), min_size=0, max_size=5, unique=True),
    merge_seed=st.integers(0, 2**16),
    magnitude=st.sampled_from([1e-6, 1.0, 1e6]),
)
@settings(max_examples=25, deadline=None)
def test_she_summation_is_exact_and_grouping_invariant(
    splits, merge_seed, magnitude
):
    """SHE's accumulator is an exact fixed-point summation: any split of
    the report stream, absorbed in any chunking and merged in any order,
    finalizes to the *correctly rounded* float64 column sums — the same
    bits ``math.fsum`` produces, whatever the summand magnitudes."""
    oracle = make_oracle("SHE", 5, 1.3)
    gen = np.random.default_rng(777)
    reports = oracle.privatize(gen.integers(0, 5, size=200), rng=778)
    reports = np.asarray(reports) * magnitude
    reference = np.array(
        [math.fsum(reports[:, c]) for c in range(reports.shape[1])]
    )

    whole = oracle.accumulator().absorb(reports).finalize()
    assert np.array_equal(whole, reference)

    bounds = sorted(set(splits)) + [200]
    parts, prev = [], 0
    for b in bounds:
        parts.append(oracle.accumulator().absorb(reports[prev:b]))
        prev = b
    order = np.random.default_rng(merge_seed).permutation(len(parts))
    merged = oracle.accumulator()
    for i in order:
        merged.merge(parts[i])
    assert merged.n_absorbed == 200
    assert np.array_equal(merged.finalize(), reference)


# -- estimator linearity ---------------------------------------------------------


@given(st.integers(2, 24), st.floats(0.3, 3.0))
@settings(max_examples=20, deadline=None)
def test_pure_estimator_linear_in_reports(d, epsilon):
    """estimate(concat(A, B)) · n == estimate(A)·n_A + estimate(B)·n_B
    for support-count oracles (counts are sums over users)."""
    from repro.core.unary import OptimalUnaryEncoding

    oracle = OptimalUnaryEncoding(d, epsilon)
    gen = np.random.default_rng(42)
    va = gen.integers(0, d, size=50)
    vb = gen.integers(0, d, size=70)
    ra = oracle.privatize(va, rng=1)
    rb = oracle.privatize(vb, rng=2)
    combined = np.vstack([ra, rb])
    ca = oracle.support_counts(ra)
    cb = oracle.support_counts(rb)
    cc = oracle.support_counts(combined)
    assert np.allclose(cc, ca + cb)
