"""Property test: at-least-once redelivery is invisible to estimates.

The distributed service promises that delivery faults — duplicated
envelopes, duplicated ships, arbitrary interleaving of the workers'
streams at the combiner — cannot move the estimates, because dedup keys
drop every redelivery before it touches accumulator state and the merge
algebra is order-free.  Checked here for every registered core oracle
and every system stack: a chaotic delivery schedule (each envelope
delivered 1–3 times, each surviving ship delivered twice to the
combiner, combiner arrival order shuffled) produces **bit-identical**
estimates to the exactly-once schedule with the same first-delivery
order — and both match the whole-batch fold.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimation import ORACLE_REGISTRY, make_oracle
from repro.core.timed import slice_report_batch
from repro.protocol import CombinerCore, ShardFolder
from repro.systems.apple import CountMeanSketch, HadamardCountMeanSketch
from repro.systems.microsoft import DBitFlip, OneBitMean
from repro.systems.rappor import RapporAggregator, RapporParams, privatize_population

N_USERS = 120
CHUNK = 24
NUM_WORKERS = 2


def _run_schedule(oracle, envelopes, *, chaos_seed=None):
    """Fold envelopes through folders + combiner; return the result.

    ``chaos_seed=None`` is the exactly-once schedule: each envelope
    delivered once, ships forwarded once, in envelope order.  With a
    seed, every envelope is delivered 1–3 times, every fresh ship is
    delivered to the combiner twice, and the combiner-side arrival
    order is a random interleaving — same dedup keys, same data.
    """
    folders = [
        ShardFolder(oracle, worker_id=w) for w in range(NUM_WORKERS)
    ]
    core = CombinerCore(oracle, num_workers=NUM_WORKERS)
    for w in range(NUM_WORKERS):
        core.register(w)

    deliveries = []
    if chaos_seed is None:
        for i, (eid, batch) in enumerate(envelopes):
            deliveries.append((i % NUM_WORKERS, eid, batch))
    else:
        gen = np.random.default_rng(chaos_seed)
        for i, (eid, batch) in enumerate(envelopes):
            for _ in range(int(gen.integers(1, 4))):
                deliveries.append((i % NUM_WORKERS, eid, batch))

    ships = []
    for worker, eid, batch in deliveries:
        ship = folders[worker].offer(eid, batch)
        if ship is not None:
            ships.append(ship)
            if chaos_seed is not None:
                ships.append(ship)  # the combiner sees it twice
    if chaos_seed is not None:
        gen = np.random.default_rng(chaos_seed + 1)
        ships = [ships[i] for i in gen.permutation(len(ships))]
    for ship in ships:
        core.receive(ship)
    for w in range(NUM_WORKERS):
        core.drain(w)
    return core.result()


def _chunk_envelopes(reports, n):
    return [
        (f"e{i}", slice_report_batch(reports, np.arange(s, min(s + CHUNK, n))))
        for i, s in enumerate(range(0, n, CHUNK))
    ]


@pytest.mark.parametrize("name", sorted(ORACLE_REGISTRY))
@given(
    report_seed=st.integers(0, 2**31),
    chaos_seed=st.integers(0, 2**31),
)
@settings(max_examples=6, deadline=None)
def test_redelivery_invisible_for_core_oracles(name, report_seed, chaos_seed):
    oracle = make_oracle(name, 9, 1.3)
    values = np.random.default_rng(report_seed).integers(0, 9, size=N_USERS)
    reports = oracle.privatize(values, rng=report_seed)
    envelopes = _chunk_envelopes(reports, N_USERS)

    once = _run_schedule(oracle, envelopes)
    chaos = _run_schedule(oracle, envelopes, chaos_seed=chaos_seed)

    # Dedup makes the fault schedule invisible: bit-identical estimates
    # (even for SHE — the surviving merge set and order are the same),
    # exact counts, no phantom or lost users.
    assert np.array_equal(once.estimated_counts, chaos.estimated_counts)
    assert chaos.absorbed_reports == once.absorbed_reports == N_USERS
    assert chaos.late_reports == 0
    assert chaos.duplicate_envelopes > 0  # the chaos really happened
    assert np.array_equal(
        once.estimated_counts,
        oracle.accumulator().absorb(reports).finalize(),
    )


def _system_cases():
    gen = np.random.default_rng(77)

    cms = CountMeanSketch(200, 2.0, k=4, m=64, master_seed=3)
    hcms = HadamardCountMeanSketch(200, 2.0, k=4, m=64, master_seed=3)
    params = RapporParams(num_bits=32, num_hashes=2, num_cohorts=4)
    rappor = RapporAggregator(params, 6)
    db = DBitFlip(num_buckets=24, d=6, epsilon=1.0)
    ob = OneBitMean(50.0, 1.0)

    class _Shim:
        """Duck-typed oracle: the service cores only need accumulator()."""

        def __init__(self, factory):
            self.accumulator = factory

    return [
        (
            "cms",
            _Shim(cms.accumulator),
            cms.privatize(gen.integers(0, 200, N_USERS), rng=4),
        ),
        (
            "hcms",
            _Shim(hcms.accumulator),
            hcms.privatize(gen.integers(0, 200, N_USERS), rng=5),
        ),
        (
            "rappor",
            _Shim(rappor.accumulator),
            privatize_population(
                params, gen.integers(0, 6, N_USERS), 6, rng=7
            ),
        ),
        (
            "dbitflip",
            _Shim(db.accumulator),
            db.privatize(gen.integers(0, 24, N_USERS), rng=8),
        ),
        (
            "onebit",
            _Shim(ob.accumulator),
            ob.privatize(gen.uniform(0, 50, N_USERS), rng=9),
        ),
    ]


_SYSTEM_CASES = _system_cases()


@pytest.mark.parametrize(
    "label,shim,reports", _SYSTEM_CASES, ids=[c[0] for c in _SYSTEM_CASES]
)
@given(chaos_seed=st.integers(0, 2**31))
@settings(max_examples=6, deadline=None)
def test_redelivery_invisible_for_system_stacks(label, shim, reports, chaos_seed):
    envelopes = _chunk_envelopes(reports, N_USERS)
    once = _run_schedule(shim, envelopes)
    chaos = _run_schedule(shim, envelopes, chaos_seed=chaos_seed)
    assert np.array_equal(once.estimated_counts, chaos.estimated_counts)
    assert chaos.absorbed_reports == N_USERS
    assert chaos.late_reports == 0
    assert chaos.duplicate_envelopes > 0
    assert np.array_equal(
        once.estimated_counts,
        shim.accumulator().absorb(reports).finalize(),
    )
