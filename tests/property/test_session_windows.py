"""Property tests for data-driven session windows.

Promises the session geometry makes, checked for every registered core
oracle *and* every system stack:

* **session = batch**: with bursty timestamped reports arriving
  *shuffled*, every sealed session's estimate is bit-identical to the
  one-shot batch over the reports whose timestamps fall in that
  session's extent — including runs where out-of-order arrival forces
  open panes to coalesce.  Sessions partition the reports (no gaps, no
  double counting).
* **bridge merges**: a late report landing within ``gap`` of two open
  sessions merges exactly those two — one window comes out, one pane
  coalesce is counted, and the disjoint-users ledger holds one
  (collapsed) charge under the final window identity.
* **arrival-order independence**: any arrival order within
  ``allowed_lateness`` yields the same sealed windows (extents, users
  and every bit of the estimates); only the creation serials may
  differ.
* **every report accounted**: with stragglers injected behind the
  sealed horizon, ``absorbed_reports + late_reports == n`` — late
  reports are counted, never dropped, and never disturb sealed windows.
"""

import numpy as np
import pytest

from repro.core import TimedReports
from repro.core.estimation import ORACLE_REGISTRY, make_oracle
from repro.protocol import EventTimeCollector, WindowSpec

from test_windowing import _SYSTEM_CASES


def _bursty_times(n, *, gap, bursts, seed):
    """Event times in ``bursts`` dense bursts, each wider than ``gap``.

    Burst centers sit ``10·gap`` apart (well separated) while each
    burst spans ``3·gap`` — so shuffled arrival routinely opens a burst
    as several proto-sessions that later reports bridge, exercising the
    coalescing path, yet the *final* clustering is exactly one session
    per burst (dense bursts have no internal quiet stretch > gap).
    """
    gen = np.random.default_rng(seed)
    burst = np.arange(n) % bursts  # every burst populated
    ts = burst * (10.0 * gap) + gen.uniform(0.0, 3.0 * gap, n)
    return ts, gen


def _stream_sessions(
    oracle, reports, slicer, ts, arrival, *, gap, lateness, chunk, **kwargs
):
    spec = WindowSpec.session(gap, allowed_lateness=lateness)
    collector = EventTimeCollector(oracle, spec, **kwargs)
    for start in range(0, arrival.size, chunk):
        idx = arrival[start : start + chunk]
        collector.absorb(TimedReports(ts[idx], slicer(reports, idx)))
    return collector, collector.finish()


def _assert_session_windows_equal_batches(
    oracle, reports, slicer, n, *, gap, seed, bursts=5, chunk=7
):
    """Shuffled bursty arrival; every sealed session vs its batch, bitwise."""
    ts, gen = _bursty_times(n, gap=gap, bursts=bursts, seed=seed)
    arrival = gen.permutation(n)
    collector, result = _stream_sessions(
        oracle,
        reports,
        slicer,
        ts,
        arrival,
        gap=gap,
        lateness=1e6,  # covers the whole shuffle: nothing is late
        chunk=chunk,
        user_model="disjoint_users",
    )
    assert result.absorbed_reports + result.late_reports == n
    assert result.late_reports == 0
    assert len(result) == bursts  # final clustering: one session per burst
    covered = 0
    for snap in result:
        mask = (ts >= snap.window_start) & (ts < snap.window_end)
        batch = oracle.accumulator().absorb(slicer(reports, mask)).finalize()
        assert snap.window_users == int(mask.sum())
        assert np.array_equal(snap.window_estimates, batch)
        covered += snap.window_users
    assert covered == n  # sessions partition the reports
    # Window extents really are data-driven: [first_ts, last_ts + gap).
    starts = sorted(s.window_start for s in result)
    assert np.allclose(starts, [np.min(ts[np.arange(n) % bursts == b]) for b in range(bursts)])
    final = result[-1]
    whole = oracle.accumulator().absorb(reports).finalize()
    assert final.total_users == n
    assert np.array_equal(final.cumulative_estimates, whole)
    # Disjoint-users accounting is keyed by the *final* session identity.
    if collector._declaration is not None:
        expected = {
            f"session-{s.window_index}[{s.window_start:g},{s.window_end:g})"
            for s in result
        }
        assert {sp.group for sp in collector.ledger.spends} == expected
    return result


@pytest.mark.parametrize("name", sorted(ORACLE_REGISTRY))
def test_core_oracle_session_windows_equal_batches(name, slice_reports):
    oracle = make_oracle(name, 9, 1.4)
    n = 480
    values = np.random.default_rng(41).integers(0, 9, size=n)
    reports = oracle.privatize(values, rng=42)
    result = _assert_session_windows_equal_batches(
        oracle, reports, slice_reports, n, gap=2.0, seed=43
    )
    # Shuffled small-envelope arrival split bursts into proto-sessions
    # that later reports bridged — the coalescing path genuinely ran
    # (deterministic given the seed).
    assert result.coalesced_panes > 0


@pytest.mark.parametrize(
    "label,mechanism,reports,n,slicer",
    _SYSTEM_CASES,
    ids=[c[0] for c in _SYSTEM_CASES],
)
def test_system_stack_session_windows_equal_batches(
    label, mechanism, reports, n, slicer
):
    _assert_session_windows_equal_batches(
        mechanism, reports, slicer, n, gap=2.0, seed=sum(map(ord, label))
    )


def test_late_bridging_report_merges_exactly_two_sessions(slice_reports):
    # Two bursts more than gap apart open two sessions; a late report
    # within gap of *both* bridges them: one window, one coalesce, and
    # the disjoint-users ledger collapses to a single charge under the
    # final (post-merge) identity.
    oracle = make_oracle("OUE", 6, 1.0)
    gap = 10.0
    ts = np.concatenate([np.full(5, 0.0), np.full(5, 15.0), [7.0]])
    values = np.random.default_rng(50).integers(0, 6, ts.size)
    reports = oracle.privatize(values, rng=51)
    spec = WindowSpec.session(gap, allowed_lateness=50.0)
    collector = EventTimeCollector(oracle, spec, user_model="disjoint_users")
    collector.absorb(TimedReports(ts[:5], slice_reports(reports, np.arange(5))))
    collector.absorb(
        TimedReports(ts[5:10], slice_reports(reports, np.arange(5, 10)))
    )
    assert collector.pane_count == 2  # two open sessions, > gap apart
    assert len(collector.ledger) == 2  # each charged provisionally
    collector.absorb(TimedReports(ts[10:], slice_reports(reports, [10])))
    assert collector.pane_count == 1
    assert collector.coalesced_panes == 1
    result = collector.finish()
    assert len(result) == 1
    assert result.coalesced_panes == 1
    assert result.late_reports == 0
    snap = result[0]
    assert (snap.window_start, snap.window_end) == (0.0, 15.0 + gap)
    assert snap.window_users == 11
    batch = oracle.accumulator().absorb(reports).finalize()
    assert np.array_equal(snap.window_estimates, batch)
    # Both provisional charges covered disjoint subpopulations of what
    # is now one window: the merged group keeps exactly one.
    assert len(collector.ledger) == 1
    (spend,) = collector.ledger.spends
    assert spend.group == f"session-{snap.window_index}[0,25)"
    assert collector.ledger.total_epsilon == oracle.privacy_spend().epsilon


@pytest.mark.parametrize("perm_seed", [0, 1, 2])
@pytest.mark.parametrize("chunk", [7, 64])
def test_session_results_independent_of_arrival_order(
    slice_reports, perm_seed, chunk
):
    # Any arrival order inside allowed_lateness yields the same sealed
    # windows — extents, users, and every bit of the estimates.  Only
    # the creation serials (window_index) may differ, so compare in
    # event order.
    oracle = make_oracle("OLH", 8, 1.2)
    n = 300
    ts, _ = _bursty_times(n, gap=2.0, bursts=4, seed=60)
    values = np.random.default_rng(61).integers(0, 8, n)
    reports = oracle.privatize(values, rng=62)

    def run(arrival, chunk_size):
        _, result = _stream_sessions(
            oracle,
            reports,
            slice_reports,
            ts,
            arrival,
            gap=2.0,
            lateness=1e6,
            chunk=chunk_size,
        )
        return sorted(result, key=lambda s: s.window_start)

    baseline = run(np.arange(n), 96)  # in-order arrival
    shuffled = run(np.random.default_rng(perm_seed).permutation(n), chunk)
    assert len(baseline) == len(shuffled)
    for a, b in zip(baseline, shuffled):
        assert (a.window_start, a.window_end) == (b.window_start, b.window_end)
        assert a.window_users == b.window_users
        assert np.array_equal(a.window_estimates, b.window_estimates)


def test_absorbed_plus_late_equals_n_under_stragglers(slice_reports):
    # Zero lateness: each new burst's arrival seals the previous
    # session instantly.  Stragglers aimed behind the sealed horizon
    # are counted late — never absorbed, never dropped, and the sealed
    # windows they missed are not disturbed.
    oracle = make_oracle("DE", 5, 1.0)
    gap = 5.0
    on_time = np.concatenate([np.full(20, 0.0), np.full(20, 50.0), np.full(20, 100.0)])
    stragglers = np.array([1.0, 2.0, 51.0])  # behind the horizon on arrival
    ts = np.concatenate([on_time, stragglers])
    n = ts.size
    values = np.random.default_rng(70).integers(0, 5, n)
    reports = oracle.privatize(values, rng=71)
    spec = WindowSpec.session(gap, allowed_lateness=0.0)
    collector = EventTimeCollector(oracle, spec)
    collector.absorb(TimedReports(ts[:20], slice_reports(reports, np.arange(20))))
    collector.absorb(
        TimedReports(ts[20:40], slice_reports(reports, np.arange(20, 40)))
    )
    collector.absorb(
        TimedReports(ts[40:60], slice_reports(reports, np.arange(40, 60)))
    )
    # First two sessions sealed; horizon sits at 50 + gap.
    assert len(collector.snapshots) == 2
    collector.absorb(TimedReports(ts[60:], slice_reports(reports, np.arange(60, n))))
    result = collector.finish()
    assert result.late_reports == 3
    assert result.absorbed_reports == 60
    assert result.absorbed_reports + result.late_reports == n
    assert len(result) == 3
    for snap, start in zip(result, [0.0, 50.0, 100.0]):
        assert snap.window_start == start
        assert snap.window_users == 20
        mask = on_time == start
        batch = (
            oracle.accumulator()
            .absorb(slice_reports(reports, np.flatnonzero(mask)))
            .finalize()
        )
        assert np.array_equal(snap.window_estimates, batch)


def test_straggler_above_horizon_opens_and_seals_absorbed(slice_reports):
    # A report behind the watermark but *above* the sealed horizon is
    # not late: it opens its own session, which seals on the next sweep
    # — absorbed and emitted.  Its serial postdates the session it
    # seals before, so emitted window_index order is not monotone.
    oracle = make_oracle("OUE", 4, 1.0)
    reports = oracle.privatize(np.zeros(3, dtype=np.int64), rng=80)
    spec = WindowSpec.session(2.0, allowed_lateness=0.0)
    collector = EventTimeCollector(oracle, spec)
    collector.absorb(TimedReports(np.array([100.0]), slice_reports(reports, [0])))
    collector.absorb(TimedReports(np.array([10.0]), slice_reports(reports, [1])))
    result = collector.finish()
    assert result.late_reports == 0
    assert result.absorbed_reports == 2
    assert [s.window_start for s in result] == [10.0, 100.0]
    assert [s.window_index for s in result] == [1, 0]  # serials, not sorted
