"""Property tests for the streaming fast path (PR 9).

The vectorized session sweep and the ingest micro-batch coalescing are
*pure* performance work: every estimate, extent, coalesce count, late
count and ledger identity must be reproducible from the slow reference
implementations they replaced.  Checked here:

* **vectorized == reference**: the numpy gap-clustering sweep
  (`_SessionPaneGeometry._clusters`) produces bit-identical results to
  the per-report reference walk (`_reference_clusters`) — sealed
  windows (serials, extents, users, estimates), coalesce counts,
  straggler/late accounting and disjoint-users ledger groups — over
  shuffled bursty arrivals, for every registered core oracle and every
  system stack.
* **micro-batched collector == unbatched**: coalescing absorb calls up
  to a row budget (flushing when the watermark would seal) leaves fixed
  event-time geometry *fully* bit-identical — same snapshots, same
  per-snapshot late counts — and leaves session geometry's sealed
  windows, partition and ledger extents identical (only creation
  serials and proto-session coalesce counts may shift, exactly as for
  any other arrival re-chunking).
* **micro-batched service fold == unbatched**: `ShardFolder.offer_batch`
  folding several delivery envelopes at once yields the same combiner
  result as per-envelope `offer`, with duplicate-delivery dedup
  preserved across coalesced batches.
"""

import numpy as np
import pytest

from repro.core import TimedReports
from repro.core.estimation import ORACLE_REGISTRY, make_oracle
from repro.core.timed import slice_report_batch
from repro.protocol import (
    CombinerCore,
    EventTimeCollector,
    ShardFolder,
    WindowSpec,
)

from test_session_windows import _bursty_times
from test_windowing import _SYSTEM_CASES


def _stream(oracle, reports, slicer, ts, arrival, spec, *, chunk, reference,
            micro_batch=None, **kwargs):
    collector = EventTimeCollector(
        oracle, spec, micro_batch=micro_batch, **kwargs
    )
    if reference:
        collector._geometry.use_reference_sweep = True
    for start in range(0, arrival.size, chunk):
        idx = arrival[start : start + chunk]
        collector.absorb(TimedReports(ts[idx], slicer(reports, idx)))
    return collector, collector.finish()


def _assert_bit_identical(a_pair, b_pair):
    """Everything the engine emits, bitwise — serials included."""
    (ca, a), (cb, b) = a_pair, b_pair
    assert len(a) == len(b)
    assert a.absorbed_reports == b.absorbed_reports
    assert a.late_reports == b.late_reports
    assert a.coalesced_panes == b.coalesced_panes
    for x, y in zip(a, b):
        assert x.window_index == y.window_index
        assert (x.window_start, x.window_end) == (y.window_start, y.window_end)
        assert x.window_users == y.window_users
        assert x.total_users == y.total_users
        assert x.late_reports == y.late_reports
        assert np.array_equal(x.window_estimates, y.window_estimates)
        assert np.array_equal(x.cumulative_estimates, y.cumulative_estimates)
    assert [s.group for s in ca.ledger.spends] == [
        s.group for s in cb.ledger.spends
    ]
    assert ca.ledger.total_epsilon == cb.ledger.total_epsilon


def _run_both_sweeps(oracle, reports, slicer, n, *, gap, seed, **kwargs):
    ts, gen = _bursty_times(n, gap=gap, bursts=5, seed=seed)
    arrival = gen.permutation(n)
    spec = WindowSpec.session(gap, allowed_lateness=1e6)
    fast = _stream(
        oracle, reports, slicer, ts, arrival, spec,
        chunk=7, reference=False, **kwargs,
    )
    slow = _stream(
        oracle, reports, slicer, ts, arrival, spec,
        chunk=7, reference=True, **kwargs,
    )
    assert fast[1].coalesced_panes > 0  # the merge path genuinely ran
    _assert_bit_identical(fast, slow)
    return fast[1]


@pytest.mark.parametrize("name", sorted(ORACLE_REGISTRY))
def test_vectorized_sweep_matches_reference_core_oracles(name, slice_reports):
    oracle = make_oracle(name, 9, 1.4)
    n = 360
    values = np.random.default_rng(90).integers(0, 9, size=n)
    reports = oracle.privatize(values, rng=91)
    result = _run_both_sweeps(
        oracle, reports, slice_reports, n,
        gap=2.0, seed=92, user_model="disjoint_users",
    )
    assert result.absorbed_reports == n


@pytest.mark.parametrize(
    "label,mechanism,reports,n,slicer",
    _SYSTEM_CASES,
    ids=[c[0] for c in _SYSTEM_CASES],
)
def test_vectorized_sweep_matches_reference_system_stacks(
    label, mechanism, reports, n, slicer
):
    _run_both_sweeps(
        mechanism, reports, slicer, n, gap=2.0, seed=sum(map(ord, label))
    )


def test_vectorized_sweep_matches_reference_with_stragglers(slice_reports):
    # Zero lateness seals aggressively; stragglers behind the sealed
    # horizon must be counted late identically in both sweeps.
    oracle = make_oracle("OUE", 6, 1.0)
    on_time = np.repeat([0.0, 50.0, 100.0, 150.0], 15)
    stragglers = np.array([1.0, 2.0, 51.0, 101.0])
    ts = np.concatenate([on_time, stragglers])
    n = ts.size
    reports = oracle.privatize(
        np.random.default_rng(93).integers(0, 6, n), rng=94
    )
    spec = WindowSpec.session(5.0, allowed_lateness=0.0)
    arrival = np.arange(n)
    fast = _stream(
        oracle, reports, slice_reports, ts, arrival, spec,
        chunk=15, reference=False,
    )
    slow = _stream(
        oracle, reports, slice_reports, ts, arrival, spec,
        chunk=15, reference=True,
    )
    assert fast[1].late_reports == 4
    assert fast[1].absorbed_reports + fast[1].late_reports == n
    _assert_bit_identical(fast, slow)


@pytest.mark.parametrize("micro_batch", [16, 64, 100_000])
def test_micro_batch_collector_bit_identical_fixed_geometry(
    slice_reports, micro_batch
):
    # Fixed panes, arrival skew bounded by allowed_lateness (the
    # on-time regime): flush-on-would-seal folds the buffer at exactly
    # the per-envelope sealing points, so micro-batching is *fully*
    # invisible — snapshots, per-snapshot late counts, pane counts —
    # even though panes seal mid-stream.
    oracle = make_oracle("OLH", 8, 1.2)
    n = 400
    gen = np.random.default_rng(95)
    ts = np.sort(gen.uniform(0.0, 40.0, n))
    reports = oracle.privatize(gen.integers(0, 8, n), rng=96)
    spec = WindowSpec.event_tumbling(10.0, allowed_lateness=2.0)
    # Arrival is event order jittered by < allowed_lateness: nothing
    # is ever late, but the watermark still seals panes mid-stream.
    arrival = np.argsort(ts + gen.uniform(0.0, 1.5, n), kind="stable")

    def run(mb):
        return _stream(
            oracle, reports, slice_reports, ts, arrival, spec,
            chunk=13, reference=False, micro_batch=mb,
        )

    plain, batched = run(None), run(micro_batch)
    assert plain[1].late_reports == 0
    assert len(plain[1]) > 1  # panes really sealed mid-stream
    _assert_bit_identical(plain, batched)


def test_micro_batch_collector_straggler_invariants(slice_reports):
    # Beyond allowed_lateness, deferring the watermark to flush
    # boundaries is strictly more lenient: a batched run absorbs at
    # least every report the unbatched run absorbed (never fewer),
    # `absorbed + late == n` holds in both, and sealed windows are
    # never disturbed by the extra absorbed data.
    oracle = make_oracle("DE", 6, 1.0)
    n = 300
    gen = np.random.default_rng(103)
    ts = gen.uniform(0.0, 40.0, n)  # unsorted: heavy cross-envelope skew
    reports = oracle.privatize(gen.integers(0, 6, n), rng=104)
    spec = WindowSpec.event_tumbling(10.0, allowed_lateness=2.0)
    arrival = gen.permutation(n)

    def run(mb):
        return _stream(
            oracle, reports, slice_reports, ts, arrival, spec,
            chunk=13, reference=False, micro_batch=mb,
        )[1]

    plain = run(None)
    batched = run(32)
    assert plain.late_reports > 0  # the straggler path genuinely ran
    assert plain.absorbed_reports + plain.late_reports == n
    assert batched.absorbed_reports + batched.late_reports == n
    assert batched.late_reports <= plain.late_reports
    assert {s.window_index for s in plain} == {s.window_index for s in batched}


@pytest.mark.parametrize("micro_batch", [16, 64])
def test_micro_batch_collector_same_sessions(slice_reports, micro_batch):
    # Session geometry: coalescing absorbs re-chunks arrival, so only
    # creation serials / proto-session merge counts may shift — the
    # sealed windows (extents, users, estimates), the partition, the
    # late accounting and the ledger's final window extents must not.
    oracle = make_oracle("HR", 8, 1.2)
    n = 350
    ts, gen = _bursty_times(n, gap=2.0, bursts=4, seed=97)
    reports = oracle.privatize(gen.integers(0, 8, n), rng=98)
    spec = WindowSpec.session(2.0, allowed_lateness=1e6)
    arrival = gen.permutation(n)

    def run(mb):
        collector, result = _stream(
            oracle, reports, slice_reports, ts, arrival, spec,
            chunk=13, reference=False, micro_batch=mb,
            user_model="disjoint_users",
        )
        extents = sorted(
            s.group.split("[", 1)[1] for s in collector.ledger.spends
        )
        return collector, result, extents

    _, plain, plain_extents = run(None)
    _, batched, batched_extents = run(micro_batch)
    assert plain.absorbed_reports == batched.absorbed_reports
    assert plain.late_reports == batched.late_reports
    assert len(plain) == len(batched)
    for x, y in zip(
        sorted(plain, key=lambda s: s.window_start),
        sorted(batched, key=lambda s: s.window_start),
    ):
        assert (x.window_start, x.window_end) == (y.window_start, y.window_end)
        assert x.window_users == y.window_users
        assert np.array_equal(x.window_estimates, y.window_estimates)
    assert plain_extents == batched_extents


def _chunk_envelopes(reports, n, chunk):
    return [
        (f"e{i}", slice_report_batch(reports, np.arange(s, min(s + chunk, n))))
        for i, s in enumerate(range(0, n, chunk))
    ]


@pytest.mark.parametrize("batch_size", [1, 3, 7, 100])
def test_service_offer_batch_matches_per_envelope(batch_size):
    # The folder coalescing several envelopes (including redeliveries
    # *inside* a coalesced batch) must reach the same combiner result
    # as per-envelope folding, with every duplicate still dropped.
    oracle = make_oracle("OUE", 9, 1.3)
    n = 180
    gen = np.random.default_rng(99)
    reports = oracle.privatize(gen.integers(0, 9, n), rng=100)
    envelopes = _chunk_envelopes(reports, n, 12)
    # each envelope delivered 1-3 times, duplicates interleaved
    deliveries = []
    for eid, payload in envelopes:
        for _ in range(int(gen.integers(1, 4))):
            deliveries.append((eid, payload))
    deliveries = [deliveries[i] for i in gen.permutation(len(deliveries))]

    def run(size):
        folder = ShardFolder(oracle, worker_id=0)
        core = CombinerCore(oracle, num_workers=1)
        core.register(0)
        flags_seen = []
        for start in range(0, len(deliveries), size):
            items = deliveries[start : start + size]
            ship, flags = folder.offer_batch(items)
            flags_seen.extend(flags)
            if ship is not None:
                core.receive(ship)
                core.receive(ship)  # ship-level redelivery too
        core.drain(0)
        return folder, core.result(), flags_seen

    folder_a, once, flags_a = run(1)
    folder_b, coalesced, flags_b = run(batch_size)
    assert flags_a == flags_b  # per-envelope ack flags identical
    assert folder_a.duplicates == folder_b.duplicates
    assert folder_b.envelopes == len(envelopes)
    assert np.array_equal(once.estimated_counts, coalesced.estimated_counts)
    assert coalesced.absorbed_reports == n
    assert np.array_equal(
        coalesced.estimated_counts,
        oracle.accumulator().absorb(reports).finalize(),
    )


def test_service_offer_batch_windowed_pane_split():
    # Timed envelopes coalesce across pane boundaries: the batch's pane
    # split must land every report in the same pane as per-envelope
    # folding, and the sealed fleet-wide windows must be bit-identical.
    oracle = make_oracle("DE", 6, 1.1)
    n = 160
    gen = np.random.default_rng(101)
    ts = np.sort(gen.uniform(0.0, 40.0, n))  # in-order: nothing is late
    reports = oracle.privatize(gen.integers(0, 6, n), rng=102)
    window = WindowSpec.event_tumbling(10.0, allowed_lateness=0.0)
    envelopes = [
        (
            f"e{i}",
            TimedReports(
                ts[s : s + 8], slice_report_batch(reports, np.arange(s, min(s + 8, n)))
            ),
        )
        for i, s in enumerate(range(0, n, 8))
    ]

    def run(size):
        folder = ShardFolder(oracle, worker_id=0, window=window)
        core = CombinerCore(oracle, num_workers=1, window=window)
        core.register(0)
        for start in range(0, len(envelopes), size):
            ship, _ = folder.offer_batch(envelopes[start : start + size])
            if ship is not None:
                core.receive(ship)
        core.drain(0)
        return core.result()

    once = run(1)
    coalesced = run(5)
    assert len(once.windows) == len(coalesced.windows)
    for a, b in zip(once.windows, coalesced.windows):
        assert (a.pane, a.start, a.end, a.users) == (b.pane, b.start, b.end, b.users)
        assert np.array_equal(a.estimated_counts, b.estimated_counts)
    assert np.array_equal(once.estimated_counts, coalesced.estimated_counts)
    assert coalesced.late_reports == 0
    assert coalesced.absorbed_reports == n


def test_micro_batch_zero_is_disabled_everywhere():
    # 0 means "disabled" on EventTimeCollector and
    # run_distributed_collection; the count-time stream drivers must
    # treat an explicit 0 as the same no-op instead of raising.
    from repro.protocol import stream_collection
    from repro.protocol.streaming import stream_reports

    oracle = make_oracle("DE", 4, 1.0)
    values = np.arange(40) % 4
    result = stream_collection(
        oracle, values, window_size=20, rng=1, micro_batch=0
    )
    assert result.absorbed_reports == 40
    reports = oracle.privatize(values, rng=2)
    result = stream_reports(
        oracle, reports, window=WindowSpec.tumbling(20), micro_batch=0
    )
    assert result.absorbed_reports == 40
    with pytest.raises(ValueError, match="event-time windows only"):
        stream_collection(
            oracle, values, window_size=20, rng=1, micro_batch=16
        )


def test_flushing_accessors_stay_consistent(slice_reports):
    # Every read accessor — stage_seconds included — flushes the
    # coalescing buffer, so counters and stage totals always describe
    # the same set of folded envelopes.
    oracle = make_oracle("DE", 6, 1.0)
    n = 60
    gen = np.random.default_rng(105)
    # Keep every timestamp inside the first pane so the would-seal
    # flush never fires and the envelope genuinely sits in the buffer.
    ts = np.sort(gen.uniform(0.0, 8.0, n))
    reports = oracle.privatize(gen.integers(0, 6, n), rng=106)
    spec = WindowSpec.event_tumbling(10.0)
    collector = EventTimeCollector(oracle, spec, micro_batch=100_000)
    collector.absorb(TimedReports(ts, reports))
    assert collector._pending  # genuinely buffered, below the budget
    stages = collector.stage_seconds  # forces the flush
    assert not collector._pending
    assert stages["absorb"] > 0.0
    assert collector.total_users == n
