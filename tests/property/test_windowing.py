"""Property tests for the windowing engine's correctness invariants.

Two promises the pane-ring design makes, checked for every registered
core oracle *and* every system stack:

* **window = batch**: each tumbling/sliding window's finalized estimate
  is bit-identical to the one-shot batch estimate over exactly that
  window's reports (SHE to ~1e-9 — float summation order), for any pane
  geometry.  The reports are privatized once and sliced, so the
  comparison is over identical randomness.
* **bounded memory**: the collector never holds more than
  ``WindowSpec.num_panes`` pane accumulators (ring + open pane), no
  matter how many windows the stream has rolled through.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.estimation import ORACLE_REGISTRY, make_oracle
from repro.protocol import StreamingCollector, WindowSpec
from repro.systems.apple import CountMeanSketch, HadamardCountMeanSketch
from repro.systems.apple.cms import CmsReports, HcmsReports
from repro.systems.microsoft import DBitFlip, OneBitMean
from repro.systems.microsoft.dbitflip import DBitFlipReports
from repro.systems.rappor import RapporAggregator, RapporParams, privatize_population


def _assert_windows_equal_batches(oracle, reports, slicer, n, spec, *, she=False):
    """Drive ``reports`` through a collector pane by pane; compare every
    window snapshot against the one-shot batch over that window's users."""
    order = np.arange(n)
    stride = spec.pane_size
    collector = StreamingCollector(oracle, spec)
    pane_starts = list(range(0, n, stride))
    for k, start in enumerate(pane_starts):
        end = min(start + stride, n)
        collector.absorb(slicer(reports, (order >= start) & (order < end)))
        snap = collector.roll()

        # The live window spans the last num_panes panes ending at `end`.
        win_start = pane_starts[max(0, k - spec.num_panes + 1)]
        window_mask = (order >= win_start) & (order < end)
        batch = (
            oracle.accumulator().absorb(slicer(reports, window_mask)).finalize()
        )
        assert snap.window_users == int(window_mask.sum())
        if she:
            assert np.allclose(snap.window_estimates, batch, rtol=1e-9, atol=1e-9)
        else:
            assert np.array_equal(snap.window_estimates, batch)

        # Pane-ring memory bound: ring + open pane never exceeds num_panes.
        assert snap.pane_count <= spec.num_panes
        assert collector.pane_count <= spec.num_panes

    # Stream end: the cumulative view equals the batch over everything.
    whole = oracle.accumulator().absorb(reports).finalize()
    final = collector.snapshot()
    assert final.total_users == n
    if she:
        assert np.allclose(final.cumulative_estimates, whole, rtol=1e-9, atol=1e-9)
    else:
        assert np.array_equal(final.cumulative_estimates, whole)


@pytest.mark.parametrize("name", sorted(ORACLE_REGISTRY))
@given(
    panes=st.integers(1, 4),
    stride=st.sampled_from([40, 80, 120]),
)
@settings(max_examples=6, deadline=None)
def test_core_oracle_windows_equal_batches(name, slice_reports, panes, stride):
    oracle = make_oracle(name, 9, 1.4)
    n = 480
    values = np.random.default_rng(31).integers(0, 9, size=n)
    reports = oracle.privatize(values, rng=32)
    spec = (
        WindowSpec.tumbling(stride)
        if panes == 1
        else WindowSpec.sliding(panes * stride, stride)
    )
    _assert_windows_equal_batches(
        oracle, reports, slice_reports, n, spec, she=(name == "SHE")
    )


def _system_cases():
    """(label, mechanism, report batch, n, slicer) per system stack."""
    gen = np.random.default_rng(202)

    cms = CountMeanSketch(300, 2.0, k=4, m=64, master_seed=3)
    cms_reports = cms.privatize(gen.integers(0, 300, 600), rng=4)

    hcms = HadamardCountMeanSketch(300, 2.0, k=4, m=64, master_seed=3)
    hcms_reports = hcms.privatize(gen.integers(0, 300, 600), rng=5)

    params = RapporParams(num_bits=32, num_hashes=2, num_cohorts=4)
    rappor = RapporAggregator(params, 6)
    cohorts, bits = privatize_population(
        params, gen.integers(0, 20, 600), 6, rng=7
    )

    db = DBitFlip(num_buckets=24, d=6, epsilon=1.0)
    db_reports = db.privatize(gen.integers(0, 24, 600), rng=8)

    ob = OneBitMean(50.0, 1.0)
    ob_bits = ob.privatize(gen.uniform(0, 50, 600), rng=9)

    return [
        (
            "cms",
            cms,
            cms_reports,
            600,
            lambda r, m: CmsReports(hash_indices=r.hash_indices[m], rows=r.rows[m]),
        ),
        (
            "hcms",
            hcms,
            hcms_reports,
            600,
            lambda r, m: HcmsReports(
                hash_indices=r.hash_indices[m], coords=r.coords[m], bits=r.bits[m]
            ),
        ),
        (
            "rappor",
            rappor,
            (cohorts, bits),
            600,
            lambda r, m: (r[0][m], r[1][m]),
        ),
        (
            "dbitflip",
            db,
            db_reports,
            600,
            lambda r, m: DBitFlipReports(
                bucket_indices=r.bucket_indices[m], bits=r.bits[m]
            ),
        ),
        ("onebit", ob, ob_bits, 600, lambda r, m: r[m]),
    ]


_SYSTEM_CASES = _system_cases()


@pytest.mark.parametrize(
    "label,mechanism,reports,n,slicer",
    _SYSTEM_CASES,
    ids=[c[0] for c in _SYSTEM_CASES],
)
@pytest.mark.parametrize(
    "spec",
    [
        WindowSpec.tumbling(150),
        WindowSpec.sliding(300, 100),
        WindowSpec.sliding(200, 50),
    ],
    ids=["tumbling", "sliding-3x100", "sliding-4x50"],
)
def test_system_stack_windows_equal_batches(label, mechanism, reports, n, slicer, spec):
    _assert_windows_equal_batches(mechanism, reports, slicer, n, spec)


@given(panes=st.integers(2, 6), rolls=st.integers(8, 24))
@settings(max_examples=10, deadline=None)
def test_pane_ring_never_exceeds_capacity(panes, rolls):
    # Structural bound, independent of workload: after any number of
    # rolls the ring holds at most num_panes accumulators.
    oracle = make_oracle("OUE", 8, 1.0)
    spec = WindowSpec.sliding(panes * 10, 10)
    col = StreamingCollector(oracle, spec)
    gen = np.random.default_rng(panes * 1000 + rolls)
    for _ in range(rolls):
        col.absorb(oracle.privatize(gen.integers(0, 8, 10), rng=gen))
        col.roll()
        assert col.pane_count <= spec.num_panes
