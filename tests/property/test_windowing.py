"""Property tests for the windowing engine's correctness invariants.

Promises the pane-store design makes, checked for every registered
core oracle *and* every system stack:

* **window = batch**: each tumbling/sliding window's finalized estimate
  is bit-identical to the one-shot batch estimate over exactly that
  window's reports, for any pane geometry and either pane store
  (two-stack or ring).  SHE included — its accumulator sums exactly, so
  merge grouping cannot move a single bit.  The reports are privatized
  once and sliced, so the comparison is over identical randomness.
* **event-time window = batch**: with timestamped reports arriving
  *shuffled*, every event-time window's estimate is bit-identical to
  the batch over the reports whose timestamps fall in that window, and
  every report is accounted (absorbed or late).
* **bounded memory**: the count-driven collector never holds more than
  ``WindowSpec.num_panes`` pane accumulators (store + open pane), no
  matter how many windows the stream has rolled through.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import TimedReports
from repro.core.estimation import ORACLE_REGISTRY, make_oracle
from repro.protocol import EventTimeCollector, StreamingCollector, WindowSpec
from repro.systems.apple import CountMeanSketch, HadamardCountMeanSketch
from repro.systems.apple.cms import CmsReports, HcmsReports
from repro.systems.microsoft import DBitFlip, OneBitMean
from repro.systems.microsoft.dbitflip import DBitFlipReports
from repro.systems.rappor import RapporAggregator, RapporParams, privatize_population


def _assert_windows_equal_batches(
    oracle, reports, slicer, n, spec, *, aggregation="two_stack"
):
    """Drive ``reports`` through a collector pane by pane; compare every
    window snapshot against the one-shot batch over that window's users."""
    order = np.arange(n)
    stride = spec.pane_size
    collector = StreamingCollector(oracle, spec, aggregation=aggregation)
    pane_starts = list(range(0, n, stride))
    for k, start in enumerate(pane_starts):
        end = min(start + stride, n)
        collector.absorb(slicer(reports, (order >= start) & (order < end)))
        snap = collector.roll()

        # The live window spans the last num_panes panes ending at `end`.
        win_start = pane_starts[max(0, k - spec.num_panes + 1)]
        window_mask = (order >= win_start) & (order < end)
        batch = (
            oracle.accumulator().absorb(slicer(reports, window_mask)).finalize()
        )
        assert snap.window_users == int(window_mask.sum())
        assert np.array_equal(snap.window_estimates, batch)

        # Pane-store memory bound: store + open pane never exceeds num_panes.
        assert snap.pane_count <= spec.num_panes
        assert collector.pane_count <= spec.num_panes

    # Stream end: the cumulative view equals the batch over everything.
    whole = oracle.accumulator().absorb(reports).finalize()
    final = collector.snapshot()
    assert final.total_users == n
    assert np.array_equal(final.cumulative_estimates, whole)


def _assert_event_windows_equal_batches(
    oracle, reports, slicer, n, spec, *, seed, chunk=96
):
    """Shuffle arrival, stream through the event-time engine, and compare
    every emitted window against the batch over its event interval."""
    gen = np.random.default_rng(seed)
    ts = gen.uniform(0.0, 8.0, n)
    arrival = gen.permutation(n)
    collector = EventTimeCollector(oracle, spec)
    for start in range(0, n, chunk):
        idx = arrival[start : start + chunk]
        collector.absorb(TimedReports(ts[idx], slicer(reports, idx)))
    result = collector.finish()
    assert result.absorbed_reports + result.late_reports == n
    assert result.late_reports == 0  # lateness covers the whole shuffle
    covered = 0
    for snap in result:
        mask = (ts >= snap.window_start) & (ts < snap.window_end)
        batch = oracle.accumulator().absorb(slicer(reports, mask)).finalize()
        assert snap.window_users == int(mask.sum())
        if snap.window_users:
            assert np.array_equal(snap.window_estimates, batch)
        else:
            assert snap.window_estimates is None
        if spec.kind == "event_tumbling":
            covered += snap.window_users
    if spec.kind == "event_tumbling":
        assert covered == n  # tumbling windows partition the event clock
    final = result[-1]
    whole = oracle.accumulator().absorb(reports).finalize()
    assert final.total_users == n
    assert np.array_equal(final.cumulative_estimates, whole)


@pytest.mark.parametrize("name", sorted(ORACLE_REGISTRY))
@given(
    panes=st.integers(1, 4),
    stride=st.sampled_from([40, 80, 120]),
    aggregation=st.sampled_from(["two_stack", "ring"]),
)
@settings(max_examples=6, deadline=None)
def test_core_oracle_windows_equal_batches(
    name, slice_reports, panes, stride, aggregation
):
    oracle = make_oracle(name, 9, 1.4)
    n = 480
    values = np.random.default_rng(31).integers(0, 9, size=n)
    reports = oracle.privatize(values, rng=32)
    spec = (
        WindowSpec.tumbling(stride)
        if panes == 1
        else WindowSpec.sliding(panes * stride, stride)
    )
    _assert_windows_equal_batches(
        oracle, reports, slice_reports, n, spec, aggregation=aggregation
    )


@pytest.mark.parametrize("name", sorted(ORACLE_REGISTRY))
@pytest.mark.parametrize(
    "spec",
    [
        WindowSpec.event_tumbling(2.0, allowed_lateness=16.0),
        WindowSpec.event_sliding(4.0, 2.0, allowed_lateness=16.0),
        WindowSpec.event_sliding(1.0, 4.0, allowed_lateness=16.0),
    ],
    ids=["event-tumbling", "event-sliding", "event-gapped"],
)
def test_core_oracle_event_windows_equal_batches(name, slice_reports, spec):
    oracle = make_oracle(name, 9, 1.4)
    n = 480
    values = np.random.default_rng(33).integers(0, 9, size=n)
    reports = oracle.privatize(values, rng=34)
    _assert_event_windows_equal_batches(
        oracle, reports, slice_reports, n, spec, seed=35
    )


def _system_cases():
    """(label, mechanism, report batch, n, slicer) per system stack."""
    gen = np.random.default_rng(202)

    cms = CountMeanSketch(300, 2.0, k=4, m=64, master_seed=3)
    cms_reports = cms.privatize(gen.integers(0, 300, 600), rng=4)

    hcms = HadamardCountMeanSketch(300, 2.0, k=4, m=64, master_seed=3)
    hcms_reports = hcms.privatize(gen.integers(0, 300, 600), rng=5)

    params = RapporParams(num_bits=32, num_hashes=2, num_cohorts=4)
    rappor = RapporAggregator(params, 6)
    cohorts, bits = privatize_population(
        params, gen.integers(0, 20, 600), 6, rng=7
    )

    db = DBitFlip(num_buckets=24, d=6, epsilon=1.0)
    db_reports = db.privatize(gen.integers(0, 24, 600), rng=8)

    ob = OneBitMean(50.0, 1.0)
    ob_bits = ob.privatize(gen.uniform(0, 50, 600), rng=9)

    return [
        (
            "cms",
            cms,
            cms_reports,
            600,
            lambda r, m: CmsReports(hash_indices=r.hash_indices[m], rows=r.rows[m]),
        ),
        (
            "hcms",
            hcms,
            hcms_reports,
            600,
            lambda r, m: HcmsReports(
                hash_indices=r.hash_indices[m], coords=r.coords[m], bits=r.bits[m]
            ),
        ),
        (
            "rappor",
            rappor,
            (cohorts, bits),
            600,
            lambda r, m: (r[0][m], r[1][m]),
        ),
        (
            "dbitflip",
            db,
            db_reports,
            600,
            lambda r, m: DBitFlipReports(
                bucket_indices=r.bucket_indices[m], bits=r.bits[m]
            ),
        ),
        ("onebit", ob, ob_bits, 600, lambda r, m: r[m]),
    ]


_SYSTEM_CASES = _system_cases()


@pytest.mark.parametrize(
    "label,mechanism,reports,n,slicer",
    _SYSTEM_CASES,
    ids=[c[0] for c in _SYSTEM_CASES],
)
@pytest.mark.parametrize(
    "spec",
    [
        WindowSpec.tumbling(150),
        WindowSpec.sliding(300, 100),
        WindowSpec.sliding(200, 50),
    ],
    ids=["tumbling", "sliding-3x100", "sliding-4x50"],
)
@pytest.mark.parametrize("aggregation", ["two_stack", "ring"])
def test_system_stack_windows_equal_batches(
    label, mechanism, reports, n, slicer, spec, aggregation
):
    _assert_windows_equal_batches(
        mechanism, reports, slicer, n, spec, aggregation=aggregation
    )


@pytest.mark.parametrize(
    "label,mechanism,reports,n,slicer",
    _SYSTEM_CASES,
    ids=[c[0] for c in _SYSTEM_CASES],
)
@pytest.mark.parametrize(
    "spec",
    [
        WindowSpec.event_tumbling(2.0, allowed_lateness=16.0),
        WindowSpec.event_sliding(4.0, 2.0, allowed_lateness=16.0),
    ],
    ids=["event-tumbling", "event-sliding"],
)
def test_system_stack_event_windows_equal_batches(
    label, mechanism, reports, n, slicer, spec
):
    _assert_event_windows_equal_batches(
        mechanism, reports, slicer, n, spec, seed=sum(map(ord, label))
    )


@given(panes=st.integers(2, 6), rolls=st.integers(8, 24))
@settings(max_examples=10, deadline=None)
def test_pane_store_never_exceeds_capacity(panes, rolls):
    # Structural bound, independent of workload: after any number of
    # rolls either store holds at most num_panes accumulators.
    oracle = make_oracle("OUE", 8, 1.0)
    spec = WindowSpec.sliding(panes * 10, 10)
    for aggregation in ("two_stack", "ring"):
        col = StreamingCollector(oracle, spec, aggregation=aggregation)
        gen = np.random.default_rng(panes * 1000 + rolls)
        for _ in range(rolls):
            col.absorb(oracle.privatize(gen.integers(0, 8, 10), rng=gen))
            col.roll()
            assert col.pane_count <= spec.num_panes
