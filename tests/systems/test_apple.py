"""Unit and integration tests for Apple's CMS, HCMS and SFP."""

import numpy as np
import pytest

from repro.systems.apple import (
    CountMeanSketch,
    HadamardCountMeanSketch,
    SfpConfig,
    discover_words,
)
from repro.systems.rappor.association import pack_string
from repro.workloads import sample_zipf, true_counts


class TestCmsConstruction:
    def test_rejects_width_one(self):
        with pytest.raises(ValueError):
            CountMeanSketch(100, 1.0, k=4, m=1)

    def test_hcms_requires_power_of_two_width(self):
        with pytest.raises(ValueError, match="power of two"):
            HadamardCountMeanSketch(100, 1.0, k=4, m=48)

    def test_same_seed_same_family(self):
        a = CountMeanSketch(1000, 1.0, k=4, m=64, master_seed=5)
        b = CountMeanSketch(1000, 1.0, k=4, m=64, master_seed=5)
        vals = np.arange(100, dtype=np.int64)
        assert np.array_equal(a.family.apply_all(vals), b.family.apply_all(vals))


class TestCmsReports:
    def test_row_structure(self):
        cms = CountMeanSketch(1000, 1.0, k=8, m=64)
        reports = cms.privatize(np.arange(50, dtype=np.int64), rng=1)
        assert reports.rows.shape == (50, 64)
        assert set(np.unique(reports.rows)) <= {-1, 1}
        assert reports.hash_indices.max() < 8

    def test_hot_bucket_bias(self):
        """The hashed bucket's bit is +1 more often than others."""
        cms = CountMeanSketch(1000, 2.0, k=1, m=32, master_seed=3)
        n = 30_000
        vals = np.full(n, 7, dtype=np.int64)
        reports = cms.privatize(vals, rng=5)
        hot = int(cms.family.apply(0, np.asarray([7]))[0])
        hot_rate = float((reports.rows[:, hot] == 1).mean())
        other = (hot + 1) % 32
        other_rate = float((reports.rows[:, other] == 1).mean())
        assert hot_rate > 0.5 > other_rate

    def test_sketch_accumulation_shape(self):
        cms = CountMeanSketch(1000, 1.0, k=4, m=64)
        reports = cms.privatize(np.arange(100, dtype=np.int64), rng=7)
        sketch = cms.build_sketch(reports)
        assert sketch.shape == (4, 64)

    def test_build_sketch_rejects_wrong_type(self):
        cms = CountMeanSketch(1000, 1.0, k=4, m=64)
        with pytest.raises(TypeError):
            cms.build_sketch(np.zeros((3, 64)))


class TestCmsEstimation:
    @pytest.mark.parametrize("cls", [CountMeanSketch, HadamardCountMeanSketch])
    def test_unbiased_on_zipf(self, cls):
        d = 64
        values, _ = sample_zipf(d, 30_000, rng=9)
        counts = true_counts(values, d)
        sketch = cls(d, 2.0, k=16, m=256, master_seed=11)
        reports = sketch.privatize(values, rng=13)
        est = sketch.estimate_counts(reports)
        sd = np.sqrt(sketch.count_variance(30_000))
        # collisions add ≈ n/m ≈ 117 extra; allow 5σ + collision slack
        assert np.all(np.abs(est - counts) < 5 * sd + 5 * 30_000 / 256)

    @pytest.mark.parametrize("cls", [CountMeanSketch, HadamardCountMeanSketch])
    def test_variance_formula_within_factor_two(self, cls):
        d = 32
        sketch = cls(d, 2.0, k=8, m=128, master_seed=17)
        values = np.zeros(5000, dtype=np.int64)  # everyone holds value 0
        target = 9  # rare value
        ests = []
        for rep in range(30):
            reports = sketch.privatize(values, rng=500 + rep)
            ests.append(sketch.estimate_counts_for(reports, np.asarray([target]))[0])
        emp = float(np.var(ests, ddof=1))
        ana = sketch.count_variance(5000)
        assert 0.3 * ana < emp < 2.5 * ana

    def test_huge_domain_candidates(self):
        cms = CountMeanSketch(1 << 60, 2.0, k=8, m=256, master_seed=19)
        heavy = (1 << 59) + 12345
        vals = np.full(8000, heavy, dtype=np.int64)
        reports = cms.privatize(vals, rng=21)
        est = cms.estimate_counts_for(
            reports, np.asarray([heavy, heavy + 1], dtype=np.int64)
        )
        sd = np.sqrt(cms.count_variance(8000))
        assert abs(est[0] - 8000) < 5 * sd + 8000 / 256 * 5
        assert abs(est[1]) < 5 * sd + 8000 / 256 * 5

    def test_hcms_variance_higher_than_cms(self):
        cms = CountMeanSketch(1000, 2.0, k=8, m=128)
        hcms = HadamardCountMeanSketch(1000, 2.0, k=8, m=128)
        assert hcms.count_variance(1000) > cms.count_variance(1000)


class TestSfp:
    @pytest.fixture(scope="class")
    def word_population(self):
        gen = np.random.default_rng(5)
        cfg = SfpConfig(
            alphabet_size=8,
            word_length=4,
            epsilon=4.0,
            puzzle_hash_range=16,
            sketch_k=16,
            sketch_m=1024,
            master_seed=3,
        )
        popular = [
            pack_string(np.asarray([1, 2, 3, 4]), 8),
            pack_string(np.asarray([7, 0, 5, 2]), 8),
        ]
        n = 120_000
        u = gen.random(n)
        words = np.empty(n, dtype=np.int64)
        words[u < 0.40] = popular[0]
        words[(u >= 0.40) & (u < 0.70)] = popular[1]
        junk = gen.integers(0, cfg.word_domain, size=n)
        words[u >= 0.70] = junk[u >= 0.70]
        return words, popular, cfg

    def test_discovers_popular_words(self, word_population):
        words, popular, cfg = word_population
        result = discover_words(words, cfg, rng=7)
        assert set(popular) <= set(result.discovered)

    def test_counts_scaled_to_population(self, word_population):
        words, popular, cfg = word_population
        result = discover_words(words, cfg, rng=11)
        lookup = dict(zip(result.discovered, result.estimated_counts))
        truth = float((words == popular[0]).sum())
        assert 0.5 * truth < lookup[popular[0]] < 1.8 * truth

    def test_config_validation(self):
        with pytest.raises(ValueError, match="even"):
            SfpConfig(alphabet_size=8, word_length=3)
        with pytest.raises(ValueError):
            SfpConfig(alphabet_size=8, word_length=4, fragment_fraction=0.0)

    def test_empty_input_rejected(self):
        cfg = SfpConfig(alphabet_size=8, word_length=4)
        with pytest.raises(ValueError):
            discover_words(np.asarray([], dtype=int), cfg)

    def test_uniform_noise_discovers_nothing(self):
        cfg = SfpConfig(
            alphabet_size=8, word_length=4, epsilon=4.0, sketch_m=1024,
            puzzle_hash_range=16, master_seed=3,
        )
        gen = np.random.default_rng(13)
        words = gen.integers(0, cfg.word_domain, size=40_000)
        result = discover_words(words, cfg, rng=17)
        assert len(result.discovered) <= 2
