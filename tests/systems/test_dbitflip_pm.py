"""Tests for memoized multi-round dBitFlip histograms."""

import numpy as np
import pytest

from repro.systems.microsoft import DBitFlipPM


def bucket_trajectories(n, rounds, k, stickiness, seed):
    """Integer bucket walks: stay w.p. stickiness, else jump uniformly."""
    gen = np.random.default_rng(seed)
    traj = np.empty((n, rounds), dtype=np.int64)
    traj[:, 0] = gen.integers(0, k, size=n)
    for t in range(1, rounds):
        stay = gen.random(n) < stickiness
        jump = gen.integers(0, k, size=n)
        traj[:, t] = np.where(stay, traj[:, t - 1], jump)
    return traj


@pytest.fixture(scope="module")
def sticky_traj():
    return bucket_trajectories(20_000, 12, 32, 0.95, seed=71)


class TestRun:
    def test_round_count_and_shapes(self, sticky_traj):
        pm = DBitFlipPM(32, 8, 1.0)
        run = pm.run(sticky_traj, rng=3)
        assert len(run.rounds) == 12
        assert run.rounds[0].estimated_counts.shape == (32,)

    def test_per_round_accuracy(self, sticky_traj):
        pm = DBitFlipPM(32, 8, 1.0)
        run = pm.run(sticky_traj, rng=5)
        sd = np.sqrt(pm.mechanism.count_variance(20_000, f=1 / 32))
        assert run.mean_rmse < 3 * sd

    def test_memoized_responses_stable_for_sticky_users(self, sticky_traj):
        pm = DBitFlipPM(32, 8, 1.0)
        run = pm.run(sticky_traj, rng=7)
        # Responses change only when the bucket does: with 95% stickiness
        # over 12 rounds, far fewer changes than rounds.
        assert run.response_changes < 3.0
        assert run.distinct_buckets_visited < 4.0

    def test_identical_static_users_never_change(self):
        traj = np.full((500, 10), 7, dtype=np.int64)
        pm = DBitFlipPM(16, 4, 1.0)
        run = pm.run(traj, rng=9)
        assert run.response_changes == 0.0
        assert run.distinct_buckets_visited == 1.0

    def test_bucket_range_validation(self):
        pm = DBitFlipPM(16, 4, 1.0)
        with pytest.raises(ValueError):
            pm.run(np.full((5, 3), 16), rng=1)

    def test_empty_rejected(self):
        pm = DBitFlipPM(16, 4, 1.0)
        with pytest.raises(ValueError):
            pm.run(np.empty((0, 0), dtype=np.int64), rng=1)


class TestLifetimeBound:
    def test_grows_with_behaviour_not_rounds(self):
        pm = DBitFlipPM(32, 8, 1.0)
        assert pm.lifetime_epsilon_bound(1) == 1.0
        assert pm.lifetime_epsilon_bound(3) == 3.0

    def test_validation(self):
        pm = DBitFlipPM(32, 8, 1.0)
        with pytest.raises(ValueError):
            pm.lifetime_epsilon_bound(0)


class TestMeanRmseGuard:
    def test_requires_rounds(self):
        from repro.systems.microsoft import PmRun

        with pytest.raises(ValueError):
            PmRun().mean_rmse
