"""Unit and integration tests for the Microsoft telemetry mechanisms."""

import math

import numpy as np
import pytest

from repro.systems.microsoft import (
    DBitFlip,
    OneBitMean,
    RepeatedCollector,
)
from repro.workloads import telemetry_trajectories


class TestOneBitMean:
    def test_response_probability_endpoints(self):
        ob = OneBitMean(10.0, 1.0)
        assert math.isclose(ob.response_probability(0.0), 1 / (math.e + 1))
        assert math.isclose(ob.response_probability(10.0), math.e / (math.e + 1))

    def test_response_probability_out_of_range(self):
        ob = OneBitMean(10.0, 1.0)
        with pytest.raises(ValueError):
            ob.response_probability(11.0)

    def test_privatize_bits(self):
        ob = OneBitMean(10.0, 1.0)
        bits = ob.privatize(np.linspace(0, 10, 100), rng=1)
        assert bits.dtype == np.uint8
        assert set(np.unique(bits)) <= {0, 1}

    def test_privatize_rejects_out_of_bounds(self):
        ob = OneBitMean(10.0, 1.0)
        with pytest.raises(ValueError):
            ob.privatize(np.asarray([-0.1]), rng=1)

    def test_mean_estimate_unbiased(self):
        ob = OneBitMean(100.0, 1.0)
        gen = np.random.default_rng(3)
        xs = gen.uniform(10, 90, 50_000)
        est = ob.estimate_mean(ob.privatize(xs, rng=5))
        sd = math.sqrt(ob.mean_variance_bound(50_000))
        assert abs(est - xs.mean()) < 5 * sd

    def test_estimate_rejects_non_bits(self):
        ob = OneBitMean(10.0, 1.0)
        with pytest.raises(ValueError):
            ob.estimate_mean(np.asarray([0.5]))

    def test_variance_bound_holds_empirically(self):
        ob = OneBitMean(50.0, 1.0)
        xs = np.full(2000, 25.0)
        ests = [ob.estimate_mean(ob.privatize(xs, rng=r)) for r in range(50)]
        emp = float(np.var(ests, ddof=1))
        assert emp < ob.mean_variance_bound(2000) * 1.5

    def test_error_scales_with_inverse_sqrt_n(self):
        ob = OneBitMean(10.0, 1.0)
        assert math.isclose(
            ob.mean_variance_bound(1000) / ob.mean_variance_bound(4000), 4.0
        )


class TestDBitFlip:
    def test_construction_validation(self):
        with pytest.raises(ValueError, match="cannot exceed"):
            DBitFlip(8, 9, 1.0)

    def test_report_shapes(self):
        db = DBitFlip(32, 4, 1.0)
        reports = db.privatize(np.arange(32), rng=1)
        assert reports.bucket_indices.shape == (32, 4)
        assert reports.bits.shape == (32, 4)

    def test_sampled_buckets_distinct_per_user(self):
        db = DBitFlip(16, 8, 1.0)
        reports = db.privatize(np.zeros(500, dtype=int), rng=3)
        for row in reports.bucket_indices:
            assert np.unique(row).size == 8

    def test_d_equals_k_reduces_to_sue(self):
        """Sampling all buckets: estimator matches SUE-style full unary."""
        db = DBitFlip(8, 8, 1.0)
        values = np.arange(8).repeat(2000)
        reports = db.privatize(values, rng=5)
        est = db.estimate_counts(reports)
        sd = math.sqrt(db.count_variance(values.shape[0], f=1 / 8))
        assert np.all(np.abs(est - 2000) < 5 * sd)

    def test_unbiased_with_subsampling(self):
        db = DBitFlip(64, 8, 1.0)
        values = np.arange(64).repeat(800)
        reports = db.privatize(values, rng=7)
        est = db.estimate_counts(reports)
        sd = math.sqrt(db.count_variance(values.shape[0], f=1 / 64))
        assert np.all(np.abs(est - 800) < 5 * sd)

    def test_variance_grows_as_d_shrinks(self):
        v_full = DBitFlip(64, 64, 1.0).count_variance(1000)
        v_half = DBitFlip(64, 8, 1.0).count_variance(1000)
        v_one = DBitFlip(64, 1, 1.0).count_variance(1000)
        assert v_full < v_half < v_one

    def test_estimate_rejects_wrong_type(self):
        db = DBitFlip(8, 2, 1.0)
        with pytest.raises(TypeError):
            db.estimate_counts(np.zeros((3, 2)))

    def test_report_alignment_enforced(self):
        from repro.systems.microsoft.dbitflip import DBitFlipReports

        with pytest.raises(ValueError):
            DBitFlipReports(
                bucket_indices=np.zeros((2, 3), dtype=np.int64),
                bits=np.zeros((2, 4), dtype=np.uint8),
            )


class TestRepeatedCollector:
    @pytest.fixture(scope="class")
    def trajectories(self):
        return telemetry_trajectories(
            15_000, 16, 100.0, persistence=0.95, volatility=0.03, rng=9
        )

    def test_mode_validation(self):
        with pytest.raises(ValueError, match="mode"):
            RepeatedCollector(10.0, 1.0, mode="bogus")

    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            RepeatedCollector(10.0, 1.0, mode="memoized_op", gamma=0.5)

    def test_fresh_budget_grows_linearly(self, trajectories):
        run = RepeatedCollector(100.0, 1.0, mode="fresh").run(trajectories, rng=1)
        assert math.isclose(run.total_epsilon, 16.0)
        assert len(run.rounds) == 16

    def test_memoized_budget_constant(self, trajectories):
        run = RepeatedCollector(100.0, 1.0, mode="memoized").run(trajectories, rng=2)
        assert math.isclose(run.total_epsilon, 1.0)

    def test_memoized_op_budget_constant(self, trajectories):
        run = RepeatedCollector(100.0, 1.0, mode="memoized_op").run(
            trajectories, rng=3
        )
        assert math.isclose(run.total_epsilon, 1.0)

    def test_all_modes_track_the_mean(self, trajectories):
        for mode in ("fresh", "memoized", "memoized_op"):
            run = RepeatedCollector(100.0, 1.0, mode=mode).run(trajectories, rng=4)
            # per-round error stays small relative to range
            assert run.mean_abs_error < 3.0, mode

    def test_memoized_responses_stable(self, trajectories):
        fresh = RepeatedCollector(100.0, 1.0, mode="fresh").run(trajectories, rng=5)
        memo = RepeatedCollector(100.0, 1.0, mode="memoized").run(trajectories, rng=5)
        assert memo.distinct_responses < fresh.distinct_responses

    def test_output_perturbation_hides_change_points(self, trajectories):
        memo = RepeatedCollector(100.0, 1.0, mode="memoized").run(trajectories, rng=6)
        op = RepeatedCollector(100.0, 1.0, mode="memoized_op", gamma=0.25).run(
            trajectories, rng=6
        )
        assert op.distinct_responses > memo.distinct_responses

    def test_rejects_out_of_bound_trajectories(self):
        collector = RepeatedCollector(10.0, 1.0)
        with pytest.raises(ValueError):
            collector.run(np.full((10, 3), 11.0), rng=1)

    def test_mean_abs_error_requires_rounds(self):
        from repro.systems.microsoft.repeated import CollectionRun

        with pytest.raises(ValueError):
            CollectionRun(mode="fresh").mean_abs_error


class TestFreshModeChargesBeforePrivatizing:
    def test_refused_round_never_randomizes_clients(self):
        # The budget guard fires before the round's clients draw their
        # randomized responses: round 3 is refused, so privatize runs
        # exactly three times (rounds 0-2), not four.
        from repro.core.budget import BudgetExceededError, PrivacyLedger

        collector = RepeatedCollector(100.0, epsilon=1.0, mode="fresh")
        calls = []
        inner_privatize = collector.mechanism.privatize

        def counting_privatize(values, rng=None):
            calls.append(len(values))
            return inner_privatize(values, rng=rng)

        collector.mechanism.privatize = counting_privatize
        traj = np.random.default_rng(60).uniform(0, 100, size=(40, 6))
        ledger = PrivacyLedger(epsilon_cap=3.0)
        with pytest.raises(BudgetExceededError):
            collector.run(traj, rng=61, ledger=ledger)
        assert len(calls) == 3
        assert len(ledger) == 3
