"""Unit and integration tests for the RAPPOR system."""

import math

import numpy as np
import pytest

from repro.systems.rappor import (
    RapporAggregator,
    RapporClient,
    RapporParams,
    cohort_bloom,
    privatize_population,
)
from repro.workloads import sample_zipf, true_counts


class TestParams:
    def test_defaults_valid(self):
        params = RapporParams()
        assert params.num_bits == 128
        assert 0 < params.p_star < params.q_star < 1

    def test_rejects_q_below_p(self):
        with pytest.raises(ValueError, match="q must exceed p"):
            RapporParams(p=0.8, q=0.5)

    def test_rejects_f_one(self):
        with pytest.raises(ValueError, match="pure noise"):
            RapporParams(f=1.0)

    def test_f_zero_means_infinite_permanent_epsilon(self):
        assert RapporParams(f=0.0).epsilon_permanent == math.inf

    def test_effective_rates_formula(self):
        params = RapporParams(f=0.5, p=0.5, q=0.75)
        assert math.isclose(params.q_star, 0.25 * 1.25 + 0.5 * 0.75)
        assert math.isclose(params.p_star, 0.25 * 1.25 + 0.5 * 0.5)

    def test_describe_contains_epsilons(self):
        text = RapporParams().describe()
        assert "eps_1" in text and "eps_inf" in text


class TestCohortBloom:
    def test_deterministic_per_cohort(self):
        params = RapporParams()
        b1 = cohort_bloom(params, 3, master_seed=9)
        b2 = cohort_bloom(params, 3, master_seed=9)
        assert np.array_equal(b1.encode(42), b2.encode(42))

    def test_cohorts_differ(self):
        params = RapporParams()
        b1 = cohort_bloom(params, 0, master_seed=9)
        b2 = cohort_bloom(params, 1, master_seed=9)
        enc1 = b1.encode_batch(np.arange(200))
        enc2 = b2.encode_batch(np.arange(200))
        assert not np.array_equal(enc1, enc2)

    def test_rejects_bad_cohort(self):
        with pytest.raises(ValueError):
            cohort_bloom(RapporParams(), 8, master_seed=0)


class TestClient:
    def test_permanent_bits_memoized(self):
        client = RapporClient(RapporParams(), cohort=0, master_seed=1, rng=5)
        first = client.permanent_bits(7)
        second = client.permanent_bits(7)
        assert first is second

    def test_different_values_different_memo(self):
        client = RapporClient(RapporParams(), cohort=0, master_seed=1, rng=5)
        assert not np.array_equal(client.permanent_bits(7), client.permanent_bits(8))

    def test_reports_vary_but_memo_fixed(self):
        client = RapporClient(RapporParams(), cohort=0, master_seed=1, rng=5)
        r1 = client.report(7)
        r2 = client.report(7)
        assert r1.shape == (128,)
        assert not np.array_equal(r1, r2)  # IRR fresh each time

    def test_prr_rates(self):
        """PRR keeps a set Bloom bit with prob 1−f/2, clears w.p. f/2."""
        params = RapporParams(f=0.5)
        keep_rate = []
        for seed in range(400):
            client = RapporClient(params, cohort=0, master_seed=1, rng=seed)
            bloom = cohort_bloom(params, 0, master_seed=1)
            true_bits = bloom.encode(3)
            prr = client.permanent_bits(3)
            set_positions = np.nonzero(true_bits)[0]
            keep_rate.append(float(prr[set_positions].mean()))
        assert abs(np.mean(keep_rate) - (1 - params.f / 2)) < 0.03


class TestPopulationPath:
    def test_shapes(self):
        params = RapporParams(num_cohorts=4)
        cohorts, reports = privatize_population(
            params, np.arange(100), master_seed=3, rng=7
        )
        assert cohorts.shape == (100,)
        assert reports.shape == (100, 128)
        assert cohorts.max() == 3

    def test_bit_rates_match_client_path(self):
        """The vectorized path must produce the same marginal bit rates."""
        params = RapporParams(num_cohorts=1)
        n = 30_000
        values = np.full(n, 5)
        _, reports = privatize_population(params, values, master_seed=3, rng=11)
        bloom = cohort_bloom(params, 0, master_seed=3)
        true_bits = bloom.encode(5)
        rates = reports.mean(axis=0)
        expected = np.where(true_bits == 1, params.q_star, params.p_star)
        assert np.all(np.abs(rates - expected) < 0.015)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            privatize_population(RapporParams(), np.asarray([], dtype=int), 0, rng=1)


class TestAggregator:
    def test_corrected_bit_counts_unbiased(self):
        params = RapporParams(num_cohorts=2)
        n = 40_000
        values = np.full(n, 9)
        cohorts, reports = privatize_population(params, values, master_seed=5, rng=13)
        agg = RapporAggregator(params, master_seed=5)
        t_hat, sizes = agg.corrected_bit_counts(cohorts, reports)
        assert sizes.sum() == n
        for cohort in range(2):
            bloom = cohort_bloom(params, cohort, master_seed=5)
            true_bits = bloom.encode(9)
            expected = true_bits.astype(float) * sizes[cohort]
            # 5σ of the corrected count
            sd = math.sqrt(sizes[cohort] * 0.25) / (params.q_star - params.p_star)
            assert np.all(np.abs(t_hat[cohort] - expected) < 5 * sd)

    def test_alignment_checks(self):
        params = RapporParams()
        agg = RapporAggregator(params, master_seed=5)
        with pytest.raises(ValueError, match="align"):
            agg.corrected_bit_counts(np.zeros(3, dtype=int), np.zeros((4, 128)))
        with pytest.raises(ValueError, match="shape"):
            agg.corrected_bit_counts(np.zeros(3, dtype=int), np.zeros((3, 64)))

    def test_design_matrix_shape_and_content(self):
        params = RapporParams(num_cohorts=2, num_bits=32)
        agg = RapporAggregator(params, master_seed=5)
        design = agg.design_matrix(np.asarray([1, 2, 3]))
        assert design.shape == (2 * 32, 3)
        col0 = design[:32, 0]
        assert np.array_equal(
            col0, cohort_bloom(params, 0, 5).encode(1).astype(float)
        )

    def test_design_matrix_rejects_duplicates(self):
        agg = RapporAggregator(RapporParams(), master_seed=5)
        with pytest.raises(ValueError, match="distinct"):
            agg.design_matrix(np.asarray([1, 1]))

    def test_decode_alpha_validation(self):
        agg = RapporAggregator(RapporParams(), master_seed=5)
        with pytest.raises(ValueError):
            agg.decode(np.zeros(1, dtype=int), np.zeros((1, 128)), np.asarray([0]), alpha=0)


class TestEndToEnd:
    def test_detects_heavy_hitters(self):
        params = RapporParams()
        values, _ = sample_zipf(100, 60_000, exponent=1.3, rng=21)
        counts = true_counts(values, 100)
        cohorts, reports = privatize_population(params, values, master_seed=9, rng=23)
        agg = RapporAggregator(params, master_seed=9)
        result = agg.decode(cohorts, reports, np.arange(100))
        detected = result.detected()
        top3 = set(int(v) for v in np.argsort(-counts)[:3])
        assert top3 <= set(detected), f"top-3 {top3} not all in {detected}"

    def test_absent_candidates_not_detected(self):
        params = RapporParams()
        # population concentrated on candidates 0..9; 90..99 absent
        values = np.random.default_rng(3).integers(0, 10, size=40_000)
        cohorts, reports = privatize_population(params, values, master_seed=9, rng=29)
        agg = RapporAggregator(params, master_seed=9)
        result = agg.decode(cohorts, reports, np.arange(100))
        detected = set(result.detected())
        ghosts = detected & set(range(90, 100))
        assert len(ghosts) <= 1  # Bonferroni keeps family-wise FP ≈ α

    def test_count_estimates_track_truth(self):
        params = RapporParams()
        values, _ = sample_zipf(50, 50_000, exponent=1.2, rng=31)
        counts = true_counts(values, 50)
        cohorts, reports = privatize_population(params, values, master_seed=9, rng=37)
        agg = RapporAggregator(params, master_seed=9)
        result = agg.decode(cohorts, reports, np.arange(50))
        top = np.argsort(-counts)[:5]
        for v in top:
            est = result.estimated_counts[v]
            assert est > 0.3 * counts[v]
            assert est < 2.0 * counts[v]


class TestLongitudinalStream:
    """RAPPOR's repeated collection through the shared windowing engine."""

    def _population(self, n=600, seed=41):
        params = RapporParams(num_bits=16, num_hashes=2, num_cohorts=2)
        agg = RapporAggregator(params, 5)
        gen = np.random.default_rng(seed)
        cohorts, bits = privatize_population(
            params, gen.integers(0, 10, n), 5, rng=seed + 1
        )
        return params, agg, cohorts, bits

    def test_count_windows_match_batches(self):
        from repro.protocol import WindowSpec

        params, agg, cohorts, bits = self._population()
        result = agg.stream(
            cohorts, bits, window=WindowSpec.tumbling(200), chunk_size=64
        )
        assert len(result) == 3
        for k, snap in enumerate(result):
            sel = slice(k * 200, (k + 1) * 200)
            batch = (
                agg.accumulator().absorb((cohorts[sel], bits[sel])).finalize()
            )
            assert np.array_equal(snap.window_estimates, batch)
        # One-time eps_infinity: the whole stream charges it exactly once.
        assert len(result.ledger) == 1
        assert math.isclose(
            result.ledger.total_epsilon, params.epsilon_permanent
        )

    def test_event_windows_route_by_timestamp(self):
        from repro.protocol import WindowSpec

        params, agg, cohorts, bits = self._population()
        ts = np.random.default_rng(43).uniform(0, 6, 600)
        result = agg.stream(
            cohorts,
            bits,
            window=WindowSpec.event_tumbling(2.0, allowed_lateness=10.0),
            timestamps=ts,
            chunk_size=100,
        )
        assert len(result) == 3
        assert result.absorbed_reports == 600 and result.late_reports == 0
        for snap in result:
            mask = (ts >= snap.window_start) & (ts < snap.window_end)
            batch = (
                agg.accumulator()
                .absorb((cohorts[mask], bits[mask]))
                .finalize()
            )
            assert np.array_equal(snap.window_estimates, batch)
        assert len(result.ledger) == 1  # memoized release, once per stream
