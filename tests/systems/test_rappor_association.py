"""Tests for unknown-dictionary discovery (bigram chaining)."""

import numpy as np
import pytest

from repro.systems.rappor.association import (
    AssociationResult,
    discover_dictionary,
    pack_string,
    unpack_string,
)


class TestPacking:
    def test_roundtrip(self):
        symbols = np.asarray([3, 0, 7, 2])
        packed = pack_string(symbols, 8)
        assert np.array_equal(unpack_string(packed, 8, 4), symbols)

    def test_msb_first(self):
        assert pack_string(np.asarray([1, 0]), 8) == 8
        assert pack_string(np.asarray([0, 1]), 8) == 1

    def test_rejects_out_of_alphabet(self):
        with pytest.raises(ValueError):
            pack_string(np.asarray([8]), 8)

    def test_unpack_rejects_overflow(self):
        with pytest.raises(ValueError):
            unpack_string(64, 8, 2)  # needs 3 symbols

    def test_unpack_rejects_negative(self):
        with pytest.raises(ValueError):
            unpack_string(-1, 8, 2)


class TestDiscovery:
    @pytest.fixture(scope="class")
    def population(self):
        """80k users: three popular strings + uniform junk tail."""
        gen = np.random.default_rng(42)
        alphabet, length = 6, 4
        popular = [
            pack_string(np.asarray([1, 2, 3, 4]), alphabet),
            pack_string(np.asarray([5, 0, 2, 1]), alphabet),
            pack_string(np.asarray([2, 2, 5, 0]), alphabet),
        ]
        n = 80_000
        choice = gen.random(n)
        strings = np.empty(n, dtype=np.int64)
        strings[choice < 0.35] = popular[0]
        strings[(choice >= 0.35) & (choice < 0.60)] = popular[1]
        strings[(choice >= 0.60) & (choice < 0.80)] = popular[2]
        junk = gen.integers(0, alphabet**length, size=n)
        tail = choice >= 0.80
        strings[tail] = junk[tail]
        return strings, popular, alphabet, length

    def test_discovers_popular_strings(self, population):
        strings, popular, alphabet, length = population
        result = discover_dictionary(
            strings, alphabet, length, master_seed=7, rng=11
        )
        assert isinstance(result, AssociationResult)
        found = set(result.discovered)
        assert set(popular) <= found, f"missing {set(popular) - found}"

    def test_counts_in_right_ballpark(self, population):
        strings, popular, alphabet, length = population
        result = discover_dictionary(
            strings, alphabet, length, master_seed=7, rng=13
        )
        lookup = dict(zip(result.discovered, result.estimated_counts))
        true_count_0 = float((strings == popular[0]).sum())
        assert popular[0] in lookup
        assert 0.4 * true_count_0 < lookup[popular[0]] < 2.0 * true_count_0

    def test_no_discoveries_on_uniform_noise(self):
        gen = np.random.default_rng(3)
        strings = gen.integers(0, 6**4, size=30_000)
        result = discover_dictionary(strings, 6, 4, master_seed=7, rng=17)
        # nothing is frequent: the pipeline must not hallucinate a head
        assert len(result.discovered) <= 2

    def test_rejects_length_one(self):
        with pytest.raises(ValueError, match="length"):
            discover_dictionary(np.asarray([1, 2]), 6, 1)

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            discover_dictionary(np.asarray([], dtype=int), 6, 4)
