"""Mergeable accumulators of the deployed system stacks.

Each system keeps integer sufficient statistics, so absorbing any
sharding of a report batch and merging must reproduce the one-shot batch
API *bitwise* — these tests split real batches at random and assert
exactly that, plus the merge guard rails.
"""

import numpy as np
import pytest

from repro.systems.apple import CountMeanSketch, HadamardCountMeanSketch
from repro.systems.apple.cms import CmsReports, HcmsReports
from repro.systems.microsoft import DBitFlip, OneBitMean
from repro.systems.microsoft.dbitflip import DBitFlipReports
from repro.systems.rappor import RapporAggregator, RapporParams, privatize_population


def _shard_masks(n, k, seed):
    assign = np.random.default_rng(seed).integers(0, k, size=n)
    return [assign == j for j in range(k)]


class TestSketchAccumulators:
    def _merged(self, sketch, reports, slicer, num_shards=4, seed=0):
        accs = []
        for mask in _shard_masks(len(reports), num_shards, seed):
            accs.append(sketch.accumulator().absorb(slicer(reports, mask)))
        merged = accs[0]
        for acc in accs[1:]:
            merged.merge(acc)
        return merged

    def test_cms_sharded_merge_is_bitwise_exact(self):
        cms = CountMeanSketch(500, 2.0, k=8, m=128, master_seed=7)
        vals = np.random.default_rng(1).integers(0, 500, size=4000)
        reports = cms.privatize(vals, rng=2)

        def slicer(r, mask):
            return CmsReports(hash_indices=r.hash_indices[mask], rows=r.rows[mask])

        merged = self._merged(cms, reports, slicer)
        assert merged.n_absorbed == 4000
        assert np.array_equal(merged.sketch(), cms.build_sketch(reports))
        assert np.array_equal(
            merged.finalize(), cms.estimate_counts(reports)
        )
        cands = np.asarray([0, 17, 499])
        assert np.array_equal(
            merged.estimate_for(cands), cms.estimate_counts_for(reports, cands)
        )

    def test_hcms_sharded_merge_is_bitwise_exact(self):
        hcms = HadamardCountMeanSketch(500, 2.0, k=8, m=128, master_seed=9)
        vals = np.random.default_rng(3).integers(0, 500, size=4000)
        reports = hcms.privatize(vals, rng=4)

        def slicer(r, mask):
            return HcmsReports(
                hash_indices=r.hash_indices[mask],
                coords=r.coords[mask],
                bits=r.bits[mask],
            )

        merged = self._merged(hcms, reports, slicer)
        assert np.array_equal(merged.finalize(), hcms.estimate_counts(reports))

    def test_merge_rejects_mismatched_sketches(self):
        a = CountMeanSketch(100, 2.0, k=8, m=128, master_seed=1).accumulator()
        b = CountMeanSketch(100, 2.0, k=8, m=128, master_seed=2).accumulator()
        with pytest.raises(ValueError):
            a.merge(b)
        hcms = HadamardCountMeanSketch(100, 2.0, k=8, m=128).accumulator()
        with pytest.raises(TypeError):
            a.merge(hcms)

    def test_absorb_rejects_wrong_report_type(self):
        cms = CountMeanSketch(100, 2.0, k=4, m=64)
        with pytest.raises(TypeError):
            cms.accumulator().absorb(np.zeros((3, 64)))


class TestRapporAccumulator:
    def test_sharded_merge_matches_whole_batch_decode(self):
        params = RapporParams(num_bits=64, num_hashes=2, num_cohorts=4)
        vals = np.random.default_rng(5).integers(0, 40, size=3000)
        cohorts, reports = privatize_population(params, vals, 21, rng=6)
        agg = RapporAggregator(params, 21)

        merged = agg.accumulator()
        for mask in _shard_masks(3000, 5, seed=7):
            merged.merge(
                agg.accumulator().absorb((cohorts[mask], reports[mask]))
            )
        t_hat, sizes = agg.corrected_bit_counts(cohorts, reports)
        assert np.array_equal(merged.finalize(), t_hat)
        assert np.array_equal(merged.cohort_sizes, sizes)

        candidates = np.arange(40)
        whole = agg.decode(cohorts, reports, candidates)
        sharded = agg.decode_accumulated(merged, candidates)
        assert np.array_equal(whole.estimated_counts, sharded.estimated_counts)
        assert np.array_equal(whole.significant, sharded.significant)
        assert whole.threshold == sharded.threshold

    def test_merge_rejects_different_params(self):
        a = RapporAggregator(
            RapporParams(num_bits=32, num_hashes=2, num_cohorts=4), 1
        ).accumulator()
        b = RapporAggregator(
            RapporParams(num_bits=32, num_hashes=2, num_cohorts=8), 1
        ).accumulator()
        with pytest.raises(ValueError):
            a.merge(b)

    def test_merge_rejects_different_master_seed(self):
        # Different master seeds mean different cohort Bloom hash
        # families — the tallies' bit positions are incomparable.
        params = RapporParams(num_bits=32, num_hashes=2, num_cohorts=4)
        a = RapporAggregator(params, 1).accumulator()
        b = RapporAggregator(params, 2).accumulator()
        with pytest.raises(ValueError):
            a.merge(b)
        with pytest.raises(ValueError):
            RapporAggregator(params, 1).decode_accumulated(b, np.arange(4))

    def test_decode_accumulated_rejects_foreign_params(self):
        params = RapporParams(num_bits=32, num_hashes=2, num_cohorts=4)
        other = RapporParams(num_bits=64, num_hashes=2, num_cohorts=4)
        agg = RapporAggregator(params, 1)
        foreign = RapporAggregator(other, 1).accumulator()
        with pytest.raises(ValueError):
            agg.decode_accumulated(foreign, np.arange(10))


class TestMicrosoftAccumulators:
    def test_dbitflip_sharded_merge_is_bitwise_exact(self):
        db = DBitFlip(num_buckets=32, d=8, epsilon=1.0)
        vals = np.random.default_rng(8).integers(0, 32, size=2500)
        reports = db.privatize(vals, rng=9)
        whole = db.estimate_counts(reports)
        merged = db.accumulator()
        for mask in _shard_masks(2500, 3, seed=10):
            shard = DBitFlipReports(
                bucket_indices=reports.bucket_indices[mask],
                bits=reports.bits[mask],
            )
            merged.merge(db.accumulator().absorb(shard))
        assert merged.n_absorbed == 2500
        assert np.array_equal(merged.finalize(), whole)

    def test_dbitflip_merge_rejects_mismatched_mechanisms(self):
        a = DBitFlip(32, 8, 1.0).accumulator()
        b = DBitFlip(32, 4, 1.0).accumulator()
        with pytest.raises(ValueError):
            a.merge(b)

    def test_onebit_sharded_merge_is_bitwise_exact(self):
        ob = OneBitMean(100.0, 1.0)
        xs = np.random.default_rng(11).uniform(0, 100, size=2000)
        bits = ob.privatize(xs, rng=12)
        whole = ob.estimate_mean(bits)
        merged = ob.accumulator()
        for mask in _shard_masks(2000, 4, seed=13):
            merged.merge(ob.accumulator().absorb(bits[mask]))
        assert merged.n_absorbed == 2000
        assert float(merged.finalize()[0]) == whole

    def test_onebit_empty_finalize_rejected(self):
        ob = OneBitMean(10.0, 1.0)
        with pytest.raises(ValueError):
            ob.accumulator().finalize()

    def test_onebit_accepts_empty_shard(self):
        # A shard (e.g. a quiet time window) may contribute zero reports;
        # absorbing it must be the monoid identity, as for every other
        # accumulator.
        ob = OneBitMean(10.0, 1.0)
        bits = ob.privatize(np.full(100, 5.0), rng=1)
        merged = (
            ob.accumulator()
            .absorb(np.asarray([], dtype=np.uint8))
            .absorb(bits)
        )
        assert merged.n_absorbed == 100
        assert float(merged.finalize()[0]) == ob.estimate_mean(bits)

    def test_onebit_merge_rejects_mismatched_bounds(self):
        a = OneBitMean(10.0, 1.0).accumulator()
        b = OneBitMean(20.0, 1.0).accumulator()
        with pytest.raises(ValueError):
            a.merge(b)
