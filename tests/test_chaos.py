"""Unit tests for the deterministic chaos harness and retry jitter.

The contract under test (chaos module docstring): every randomized
decision is a pure function of ``(seed, decision scope)`` — stable
across calls, independent of call order and of every other decision —
and scheduled faults are validated up front so a malformed plan fails
at construction, not mid-run.
"""

import dataclasses

import pytest

from repro.protocol import FaultPlan, FrameFilter, RetryPolicy, WorkerFault, chaos_unit


# -- chaos_unit: the determinism primitive -----------------------------------


def test_chaos_unit_deterministic_and_scoped():
    a = chaos_unit(7, "frame", 0, "w0:c3", 1)
    assert a == chaos_unit(7, "frame", 0, "w0:c3", 1)  # pure
    assert 0.0 <= a < 1.0
    # Any scope perturbation — seed, tag, worker, envelope, attempt —
    # yields an independent draw.
    assert a != chaos_unit(8, "frame", 0, "w0:c3", 1)
    assert a != chaos_unit(7, "frame", 1, "w0:c3", 1)
    assert a != chaos_unit(7, "frame", 0, "w0:c4", 1)
    assert a != chaos_unit(7, "frame", 0, "w0:c3", 2)
    assert a != chaos_unit(7, "retry", 0, "w0:c3", 1)


def test_chaos_unit_roughly_uniform():
    n = 4000
    draws = [chaos_unit(3, "u", i) for i in range(n)]
    assert abs(sum(draws) / n - 0.5) < 0.03
    assert abs(sum(d < 0.25 for d in draws) / n - 0.25) < 0.03


# -- FrameFilter --------------------------------------------------------------


def _filter(**kw):
    defaults = dict(
        seed=5,
        worker_id=0,
        drop_rate=0.0,
        duplicate_rate=0.0,
        delay_rate=0.0,
        delay_seconds=0.0,
        duplicate_every=None,
    )
    defaults.update(kw)
    return FrameFilter(**defaults)


def test_frame_filter_action_is_order_independent():
    f = _filter(drop_rate=0.3, delay_rate=0.2, delay_seconds=0.01)
    fates = [f.action(f"w0:c{i}", 0) for i in range(50)]
    # Same decisions whatever order (or how often) they are queried in.
    assert [f.action(f"w0:c{i}", 0) for i in reversed(range(50))] == fates[::-1]
    assert set(fates) <= {"deliver", "drop", "delay"}
    assert fates.count("drop") > 0 and fates.count("delay") > 0


def test_frame_filter_retry_rerolls_the_fate():
    f = _filter(drop_rate=0.5)
    # A dropped envelope's retransmit (attempt + 1) draws a fresh fate,
    # so no envelope is dropped forever.
    for i in range(30):
        eid = f"w0:c{i}"
        fates = [f.action(eid, attempt) for attempt in range(40)]
        assert "deliver" in fates


def test_frame_filter_copies():
    every = _filter(duplicate_every=3)
    assert [every.copies(i, f"c{i}") for i in range(7)] == [2, 1, 1, 2, 1, 1, 2]
    rate = _filter(duplicate_rate=0.4)
    copies = [rate.copies(i, f"c{i}") for i in range(60)]
    assert set(copies) == {1, 2}
    assert copies == [rate.copies(i, f"c{i}") for i in range(60)]  # stable
    assert all(_filter().copies(i, f"c{i}") == 1 for i in range(10))


def test_workers_get_independent_fault_streams():
    plan = FaultPlan(seed=9, drop_rate=0.4, ack_timeout=0.1)
    f0, f1 = plan.frame_filter(0), plan.frame_filter(1)
    fates0 = [f0.action(f"c{i}", 0) for i in range(40)]
    fates1 = [f1.action(f"c{i}", 0) for i in range(40)]
    assert fates0 != fates1  # per-worker scope, not a shared stream


# -- FaultPlan validation ------------------------------------------------------


def test_fault_plan_validation():
    with pytest.raises(ValueError, match="drop_rate"):
        FaultPlan(drop_rate=1.5, ack_timeout=0.1)
    with pytest.raises(ValueError, match="ack_timeout"):
        FaultPlan(drop_rate=0.2)  # drops need a retransmit timer
    with pytest.raises(ValueError, match="delay_seconds"):
        FaultPlan(delay_rate=0.2)
    with pytest.raises(ValueError, match="below 1"):
        FaultPlan(drop_rate=0.6, delay_rate=0.5, delay_seconds=1.0, ack_timeout=0.1)
    with pytest.raises(ValueError, match="ordinals"):
        FaultPlan(crash_combiner_at_ships=(0,))
    with pytest.raises(ValueError, match="one WorkerFault"):
        FaultPlan(
            worker_faults=(
                WorkerFault(worker=0, after_envelopes=1),
                WorkerFault(worker=0, after_envelopes=2),
            )
        )
    with pytest.raises(ValueError, match="kind"):
        WorkerFault(worker=0, after_envelopes=1, kind="explode")
    with pytest.raises(ValueError, match="partition_seconds"):
        WorkerFault(worker=0, after_envelopes=1, kind="partition")
    with pytest.raises(ValueError, match="partition_seconds"):
        WorkerFault(worker=0, after_envelopes=1, kind="kill", partition_seconds=2.0)


def test_fault_plan_accessors():
    plan = FaultPlan(
        seed=4,
        duplicate_every=5,
        worker_faults=(WorkerFault(worker=1, after_envelopes=3),),
    )
    assert plan.injects_frame_faults
    assert plan.frame_filter(0).duplicate_every == 5
    assert plan.worker_fault(1).after_envelopes == 3
    assert plan.worker_fault(0) is None
    clean = FaultPlan(seed=4)
    assert not clean.injects_frame_faults
    assert clean.frame_filter(0) is None


# -- RetryPolicy jitter --------------------------------------------------------


def test_retry_delay_deterministic_and_bounded():
    policy = RetryPolicy(base_delay=0.05, max_delay=1.0, jitter=0.5, salt=11)
    for attempt in range(8):
        d = policy.delay(attempt, key=3)
        assert d == policy.delay(attempt, key=3)  # schedule-independent
        ceiling = min(0.05 * 2**attempt, 1.0)
        assert 0.5 * ceiling <= d <= ceiling  # jitter only shrinks


def test_retry_jitter_desynchronizes_workers():
    policy = RetryPolicy(jitter=0.5, salt=2)
    delays = {policy.delay(3, key=w) for w in range(8)}
    assert len(delays) == 8  # a restarted fleet does not retry in lockstep
    # Distinct salts (distinct FaultPlan seeds) reshuffle the schedule.
    assert policy.delay(3, key=0) != dataclasses.replace(policy, salt=3).delay(
        3, key=0
    )


def test_fault_plan_seeds_the_retry_salt():
    plan = FaultPlan(seed=42)
    seeded = plan.retry_policy(RetryPolicy())
    assert seeded.salt == 42
    assert seeded.attempts == RetryPolicy().attempts
