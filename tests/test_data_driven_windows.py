"""Unit tests for the data-driven window machinery.

Covers the refactor's seams one layer at a time: `WindowSpec`
validation names the offending field; `PaneStore.coalesce` is
bit-identical on both stores (including both two-stack splice paths);
pane-store auto-selection is a `resolve_pane_store` policy decision;
and the session collector's charge/absorb lifecycle stays atomic and
commitment-consistent.  End-to-end session semantics live in
`tests/property/test_session_windows.py`.
"""

import math

import numpy as np
import pytest

from repro.core import TimedReports
from repro.core.budget import BudgetExceededError, PrivacyLedger
from repro.core.estimation import make_oracle
from repro.protocol import EventTimeCollector, WindowSpec
from repro.protocol.streaming import (
    PANE_STORES,
    RingPaneStore,
    TwoStackPaneStore,
    resolve_pane_store,
)


class TestWindowSpecValidation:
    """Every bad duration fails fast, with the field named."""

    def test_session_rejects_nonpositive_gap(self):
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError, match="gap"):
                WindowSpec.session(bad)

    def test_session_rejects_nonfinite_gap(self):
        for bad in (math.inf, math.nan):
            with pytest.raises(ValueError, match="gap"):
                WindowSpec.session(bad)

    def test_session_requires_gap(self):
        with pytest.raises(ValueError, match="gap"):
            WindowSpec("session")

    def test_session_rejects_size_and_stride(self):
        with pytest.raises(ValueError, match="size"):
            WindowSpec("session", size=5.0, gap=1.0)
        with pytest.raises(ValueError, match="stride"):
            WindowSpec("session", stride=5.0, gap=1.0)

    def test_gap_only_applies_to_sessions(self):
        for kind in ("tumbling", "cumulative", "event_tumbling"):
            with pytest.raises(ValueError, match="gap"):
                WindowSpec(kind, size=4, gap=1.0)

    def test_event_windows_reject_nonpositive_size(self):
        for bad in (0.0, -2.0, math.inf):
            with pytest.raises(ValueError, match="size"):
                WindowSpec.event_tumbling(bad)

    def test_event_sliding_rejects_nonpositive_stride(self):
        for bad in (0.0, -1.0):
            with pytest.raises(ValueError, match="stride"):
                WindowSpec.event_sliding(4.0, bad)

    def test_missing_event_size_names_the_field(self):
        with pytest.raises(ValueError, match="size"):
            WindowSpec("event_tumbling")
        with pytest.raises(ValueError, match="stride"):
            WindowSpec("event_sliding", size=4.0)

    def test_negative_lateness_rejected_everywhere(self):
        with pytest.raises(ValueError, match="allowed_lateness"):
            WindowSpec.event_tumbling(1.0, allowed_lateness=-0.5)
        with pytest.raises(ValueError, match="allowed_lateness"):
            WindowSpec.session(1.0, allowed_lateness=-0.5)
        with pytest.raises(ValueError, match="allowed_lateness"):
            WindowSpec.session(1.0, allowed_lateness=math.inf)

    def test_nonfinite_origin_rejected(self):
        with pytest.raises(ValueError, match="origin"):
            WindowSpec.event_tumbling(1.0, origin=math.nan)
        with pytest.raises(ValueError, match="origin"):
            WindowSpec.session(1.0, origin=math.inf)

    def test_session_geometry_properties(self):
        spec = WindowSpec.session(2.5, allowed_lateness=1.0)
        assert spec.is_event_time
        assert spec.is_data_driven
        assert spec.num_panes == 1
        assert spec.pane_span is None
        with pytest.raises(ValueError, match="data"):
            spec.pane_bounds(0)

    def test_fixed_kinds_are_not_data_driven(self):
        assert not WindowSpec.event_tumbling(1.0).is_data_driven
        assert not WindowSpec.tumbling(10).is_data_driven


def _panes(oracle, reports, slicer, groups):
    """One absorbed accumulator per index group."""
    out = []
    for idx in groups:
        acc = oracle.accumulator()
        acc.absorb(slicer(reports, np.asarray(idx)))
        out.append(acc)
    return out


def _merged(components):
    live = [c for c in components if c.n_absorbed > 0]
    merged = live[0].copy()
    for acc in live[1:]:
        merged.merge(acc)
    return merged.finalize()


class TestPaneStoreCoalesce:
    def _setup(self, store_cls, groups):
        oracle = make_oracle("OUE", 6, 1.0)
        n = max(i for g in groups for i in g) + 1
        values = np.random.default_rng(7).integers(0, 6, n)
        reports = oracle.privatize(values, rng=8)

        def slicer(rep, idx):
            return {k: v[idx] for k, v in rep.items()} if isinstance(rep, dict) else rep[idx]

        store = store_cls(oracle.accumulator)
        for pane in _panes(oracle, reports, slicer, groups):
            store.push(pane)
        return oracle, reports, slicer, store

    @pytest.mark.parametrize("store_cls", [RingPaneStore, TwoStackPaneStore])
    def test_coalesce_is_bit_identical_to_one_pane(self, store_cls):
        groups = [[0, 1], [2, 3], [4, 5], [6, 7]]
        oracle, reports, slicer, store = self._setup(store_cls, groups)
        store.coalesce(1, 2)
        assert store.count == 3
        panes = store.live_panes()
        # The merged pane equals the batch over both groups' reports...
        batch = oracle.accumulator().absorb(slicer(reports, np.arange(2, 6)))
        assert panes[1].n_absorbed == 4
        assert np.array_equal(panes[1].finalize(), batch.finalize())
        # ...and the store's window view still covers every report.
        whole = oracle.accumulator().absorb(slicer(reports, np.arange(8)))
        assert np.array_equal(_merged(store.window_components()), whole.finalize())

    def test_two_stack_coalesce_back_branch_keeps_back_agg(self):
        # No eviction yet: all panes sit on the back list, the splice
        # happens in place, and the cached back_agg must stay exact.
        groups = [[0], [1, 2], [3], [4, 5]]
        oracle, reports, slicer, store = self._setup(TwoStackPaneStore, groups)
        assert not store._front  # precondition: back-branch really taken
        store.coalesce(2, 3)
        whole = oracle.accumulator().absorb(slicer(reports, np.arange(6)))
        assert np.array_equal(_merged(store.window_components()), whole.finalize())
        assert store.count == 3

    def test_two_stack_coalesce_front_branch_rebuilds(self):
        groups = [[0], [1], [2, 3], [4]]
        oracle, reports, slicer, store = self._setup(TwoStackPaneStore, groups)
        store.evict_oldest()  # flips the back list onto the front stack
        assert store._front  # precondition: front-branch really taken
        store.coalesce(0, 1)
        whole = oracle.accumulator().absorb(slicer(reports, np.arange(1, 5)))
        assert np.array_equal(_merged(store.window_components()), whole.finalize())
        assert store.count == 2
        # Eviction order is preserved across the rebuild.
        store.evict_oldest()
        remaining = oracle.accumulator().absorb(slicer(reports, np.array([4])))
        assert np.array_equal(
            _merged(store.window_components()), remaining.finalize()
        )

    @pytest.mark.parametrize("store_cls", [RingPaneStore, TwoStackPaneStore])
    def test_coalesce_validates_indices(self, store_cls):
        _, _, _, store = self._setup(store_cls, [[0], [1], [2]])
        with pytest.raises(ValueError, match="adjacent"):
            store.coalesce(0, 2)
        with pytest.raises(ValueError, match="out of range"):
            store.coalesce(2, 3)
        with pytest.raises(ValueError, match="out of range"):
            store.coalesce(-1, 0)


class TestPaneStorePolicy:
    """Store auto-selection is a policy decision, not an inline branch."""

    def test_registry_names(self):
        assert set(PANE_STORES) == {"ring", "two_stack"}

    def test_single_pane_specs_resolve_to_ring(self):
        for spec in (
            WindowSpec.tumbling(100),
            WindowSpec.cumulative(50),
            WindowSpec.event_tumbling(1.0),
            WindowSpec.sliding(10, 20),  # gapped: one pane per window
        ):
            assert resolve_pane_store(spec, "two_stack") == "ring"

    def test_multi_pane_specs_keep_requested_store(self):
        spec = WindowSpec.event_sliding(4.0, 1.0)
        assert resolve_pane_store(spec, "two_stack") == "two_stack"
        assert resolve_pane_store(spec, "ring") == "ring"

    def test_session_specs_resolve_to_ring(self):
        spec = WindowSpec.session(2.0)
        assert resolve_pane_store(spec, "two_stack") == "ring"
        assert resolve_pane_store(spec, "ring") == "ring"

    def test_session_collector_uses_ring_regardless_of_aggregation(self):
        # Regression: sessions need random access (mid-ring inserts,
        # in-place absorb) the two-stack cannot give; asking for
        # two_stack must still get the ring.
        oracle = make_oracle("OUE", 4, 1.0)
        col = EventTimeCollector(
            oracle, WindowSpec.session(2.0), aggregation="two_stack"
        )
        assert isinstance(col._store, RingPaneStore)
        col = EventTimeCollector(
            oracle, WindowSpec.event_sliding(4.0, 1.0), aggregation="two_stack"
        )
        assert isinstance(col._store, TwoStackPaneStore)


class TestSessionCollectorLifecycle:
    def _collector(self, **kwargs):
        oracle = make_oracle("OLH", 8, 1.0)
        reports = oracle.privatize(
            np.random.default_rng(90).integers(0, 8, 16), rng=91
        )
        spec = WindowSpec.session(5.0, allowed_lateness=kwargs.pop("lateness", 0.0))
        return oracle, reports, EventTimeCollector(oracle, spec, **kwargs)

    def test_charge_for_is_a_commitment(self, slice_reports):
        # charge_for opens (and charges) the session before any report
        # is absorbed; the reports that then arrive at those times do
        # not charge again.
        oracle, reports, col = self._collector(user_model="disjoint_users")
        col.charge_for(np.array([1.0, 2.0]))
        assert col.pane_count == 1
        assert len(col.ledger) == 1
        assert col.total_users == 0
        col.absorb(
            TimedReports(np.array([1.0, 2.0]), slice_reports(reports, [0, 1]))
        )
        assert len(col.ledger) == 1  # still the one provisional charge
        assert col.total_users == 2

    def test_charge_for_empty_session_still_emits(self, slice_reports):
        # A committed session nobody reported into seals as an empty
        # window: charged, emitted with no estimate, never dropped.
        oracle, reports, col = self._collector(user_model="disjoint_users")
        col.charge_for(np.array([1.0]))
        col.absorb(
            TimedReports(np.array([100.0]), slice_reports(reports, [0]))
        )
        result = col.finish()
        assert len(result) == 2
        empty, live = result.snapshots
        assert (empty.window_start, empty.window_end) == (1.0, 6.0)
        assert empty.window_users == 0
        assert empty.window_estimates is None
        assert live.window_users == 1
        assert len(result.ledger) == 2

    def test_charge_for_behind_horizon_charges_nothing(self, slice_reports):
        oracle, reports, col = self._collector()
        col.absorb(TimedReports(np.array([0.0]), slice_reports(reports, [0])))
        col.absorb(TimedReports(np.array([50.0]), slice_reports(reports, [1])))
        charged = len(col.ledger)
        col.charge_for(np.array([1.0]))  # behind the sealed horizon
        assert len(col.ledger) == charged
        assert col.pane_count == 1

    def test_capped_ledger_refuses_whole_session_envelope(self, slice_reports):
        # An envelope opening two sessions where the second charge
        # breaks the cap is refused whole: no session opens, nothing
        # absorbs, no late count, and a retry after raising the cap
        # cannot double-count.
        oracle, reports, col = self._collector(
            ledger=PrivacyLedger(epsilon_cap=1.5), lateness=1.0
        )
        envelope = TimedReports(
            np.array([0.0, 100.0]), slice_reports(reports, [0, 1])
        )
        with pytest.raises(BudgetExceededError):
            col.absorb(envelope)
        assert col.pane_count == 0
        assert col.total_users == 0
        assert col.late_reports == 0
        assert col.watermark == -math.inf
        assert len(col.ledger) == 0
        col.ledger.epsilon_cap = 2.0
        col.absorb(envelope)
        # The retry lands cleanly; its watermark then seals the older
        # of the two sessions it opened.
        assert col.pane_count == 1
        assert len(col.snapshots) == 1
        assert col.total_users == 2
        assert len(col.ledger) == 2

    def test_refused_session_envelope_rolls_back_merge_plans(
        self, slice_reports
    ):
        # One envelope carrying a bridge *and* an over-budget new
        # session: the whole plan must roll back, leaving both open
        # sessions unmerged and their charges untouched.
        oracle, reports, col = self._collector(
            ledger=PrivacyLedger(epsilon_cap=2.5), lateness=50.0
        )
        col.absorb(
            TimedReports(np.array([0.0]), slice_reports(reports, [0]))
        )
        col.absorb(
            TimedReports(np.array([8.0]), slice_reports(reports, [1]))
        )
        assert col.pane_count == 2
        envelope = TimedReports(
            np.array([4.0, 200.0]), slice_reports(reports, [2, 3])
        )
        with pytest.raises(BudgetExceededError):
            col.absorb(envelope)
        assert col.pane_count == 2  # the bridge merge did not apply
        assert col.coalesced_panes == 0
        assert col.total_users == 2
        assert len(col.ledger) == 2
        col.ledger.epsilon_cap = None
        col.absorb(envelope)
        assert col.coalesced_panes == 1
        assert col.total_users == 4
        # The merged session then seals under the advanced watermark.
        assert col.pane_count == 1
        (snap,) = col.snapshots
        assert (snap.window_start, snap.window_end) == (0.0, 13.0)
        assert snap.window_users == 3

    def test_same_users_session_spends_are_ungrouped(self, slice_reports):
        oracle, reports, col = self._collector(lateness=0.0)
        col.absorb(TimedReports(np.array([0.0]), slice_reports(reports, [0])))
        col.absorb(TimedReports(np.array([50.0]), slice_reports(reports, [1])))
        result = col.finish()
        assert len(result) == 2
        assert [s.group for s in result.ledger.spends] == [None, None]
        assert math.isclose(
            result.ledger.total_epsilon, 2 * oracle.privacy_spend().epsilon
        )

    def test_disjoint_users_groups_carry_final_identities(self, slice_reports):
        oracle, reports, col = self._collector(
            lateness=0.0, user_model="disjoint_users"
        )
        col.absorb(TimedReports(np.array([0.0]), slice_reports(reports, [0])))
        col.absorb(TimedReports(np.array([50.0]), slice_reports(reports, [1])))
        result = col.finish()
        groups = sorted(s.group for s in result.ledger.spends)
        assert groups == ["session-0[0,5)", "session-1[50,55)"]
        assert math.isclose(
            result.ledger.total_epsilon, oracle.privacy_spend().epsilon
        )


class TestManyOpenSessions:
    """Regression for the O(S²) open-session bookkeeping.

    The sweep used to locate sessions with ``list.index`` and a linear
    ``_insert_position`` scan; with hundreds of concurrent open
    sessions that made every envelope O(S²).  The bisect structure
    keeps a ``_starts`` mirror that must stay strictly increasing and
    aligned with ``_sessions`` under out-of-order opens, extent
    updates and merges — checked here at every stage.
    """

    GAP = 2.0
    SPACING = 3.0  # 1.5 x gap: sessions stay pairwise > gap apart
    S = 240  # concurrent open sessions

    def _check_alignment(self, collector):
        geometry = collector._geometry
        starts = [s.start for s in geometry._sessions]
        assert geometry._starts == starts
        assert all(a < b for a, b in zip(starts, starts[1:]))

    def test_shuffled_opens_extends_and_merges(self, slice_reports):
        oracle = make_oracle("OUE", 4, 1.0)
        S, gap = self.S, self.GAP
        opens = self.SPACING * np.arange(S, dtype=np.float64)
        extends = opens + 0.5
        bridges = opens[0::2] + 1.5  # merge each even session into its successor
        ts = np.concatenate([opens, extends, bridges])
        n = ts.size
        reports = oracle.privatize(
            np.random.default_rng(7).integers(0, 4, n), rng=8
        )
        spec = WindowSpec.session(gap, allowed_lateness=1e9)
        collector = EventTimeCollector(oracle, spec)
        gen = np.random.default_rng(9)

        # Round 1: opens arrive shuffled — bisect inserts land mid-list.
        for i in gen.permutation(S):
            collector.absorb(TimedReports(ts[[i]], slice_reports(reports, [i])))
        assert collector.pane_count == S
        self._check_alignment(collector)

        # Round 2: shuffled extent updates against S open sessions.
        for i in gen.permutation(np.arange(S, 2 * S)):
            collector.absorb(TimedReports(ts[[i]], slice_reports(reports, [i])))
        assert collector.pane_count == S
        self._check_alignment(collector)

        # Round 3: bridges merge every even session with its successor.
        for i in gen.permutation(np.arange(2 * S, n)):
            collector.absorb(TimedReports(ts[[i]], slice_reports(reports, [i])))
        assert collector.pane_count == S // 2
        assert collector.coalesced_panes == S // 2
        self._check_alignment(collector)

        result = collector.finish()
        assert result.absorbed_reports == n
        assert result.late_reports == 0
        assert len(result) == S // 2
        for k, snap in enumerate(sorted(result, key=lambda s: s.window_start)):
            start = opens[2 * k]
            assert snap.window_start == start
            assert snap.window_end == start + self.SPACING + 0.5 + gap
            assert snap.window_users == 5
