"""Tests for the multi-machine collection service (transport + daemons).

The pure cores (ShardFolder, CombinerCore) are exercised directly —
dedup, pane folding, merged watermarks, sealing, lateness — and the
asyncio daemons are driven over real loopback TCP, including the
process backend with an abrupt (SIGKILL) worker restart.  The load-
bearing assertion throughout: the service's estimates are bit-identical
to the single-host ``run_sharded_collection`` over the same privatized
reports, no matter how delivery was duplicated or interrupted.
"""

import math
from types import SimpleNamespace

import numpy as np
import pytest

from repro.core import make_oracle
from repro.core.timed import TimedReports, slice_report_batch
from repro.protocol import (
    CombinerCore,
    FaultPlan,
    ServiceError,
    ShardFolder,
    WindowSpec,
    WorkerFault,
    run_distributed_collection,
    run_sharded_collection,
)
from repro.protocol.transport import (
    decode_message,
    encode_message,
    pack_report_batch,
    pack_timed_reports,
    unpack_report_batch,
    unpack_timed_reports,
)


# -- transport codec ---------------------------------------------------------


def test_message_round_trip_with_arrays():
    header = {"type": "ship", "frontier": math.inf, "pane": None}
    arrays = {
        "a": np.arange(12, dtype=np.int64).reshape(3, 4),
        "b": np.frombuffer(b"\x01\x02\x03", dtype=np.uint8),
    }
    out_header, out_arrays = decode_message(encode_message(header, arrays))
    assert out_header["type"] == "ship"
    assert out_header["frontier"] == math.inf  # ±inf survives the wire
    assert out_header["pane"] is None
    assert np.array_equal(out_arrays["a"], arrays["a"])
    assert out_arrays["a"].dtype == np.int64
    assert out_arrays["b"].tobytes() == b"\x01\x02\x03"


def test_message_decode_rejects_malformed():
    payload = encode_message({"type": "x"}, {"a": np.arange(4)})
    with pytest.raises(ValueError, match="trailing bytes"):
        decode_message(payload + b"z")
    with pytest.raises(ValueError, match="truncated"):
        decode_message(payload[:-5])
    with pytest.raises(ValueError):
        decode_message(b"\x02")


def _report_batches():
    gen = np.random.default_rng(5)
    from repro.systems.apple import CountMeanSketch, HadamardCountMeanSketch
    from repro.systems.microsoft import DBitFlip
    from repro.systems.rappor import RapporParams, privatize_population

    olh = make_oracle("OLH", 8, 1.1).privatize(gen.integers(0, 8, 40), rng=1)
    oue = make_oracle("OUE", 8, 1.1).privatize(gen.integers(0, 8, 40), rng=2)
    cms = CountMeanSketch(50, 2.0, k=3, m=32, master_seed=1).privatize(
        gen.integers(0, 50, 40), rng=3
    )
    hcms = HadamardCountMeanSketch(50, 2.0, k=3, m=32, master_seed=1).privatize(
        gen.integers(0, 50, 40), rng=4
    )
    rappor = privatize_population(
        RapporParams(num_bits=16, num_hashes=2, num_cohorts=4),
        gen.integers(0, 10, 40),
        10,
        rng=5,
    )
    dbf = DBitFlip(num_buckets=12, d=4, epsilon=1.0).privatize(
        gen.integers(0, 12, 40), rng=6
    )
    return [
        ("olh-hashed", olh),
        ("oue-matrix", oue),
        ("cms", cms),
        ("hcms", hcms),
        ("rappor-tuple", rappor),
        ("dbitflip", dbf),
    ]


_BATCHES = _report_batches()


@pytest.mark.parametrize(
    "label,reports", _BATCHES, ids=[b[0] for b in _BATCHES]
)
def test_report_batches_cross_the_wire(label, reports):
    tag, arrays = pack_report_batch(reports)
    rebuilt = unpack_report_batch(
        tag, {k: v.copy() for k, v in arrays.items()}
    )
    assert type(rebuilt) is type(reports)
    _, again = pack_report_batch(rebuilt)
    for name, arr in arrays.items():
        assert np.array_equal(again[name], arr)


def test_timed_envelope_crosses_the_wire():
    reports = make_oracle("OLH", 8, 1.1).privatize(np.arange(8), rng=1)
    timed = TimedReports(
        timestamps=np.linspace(0.0, 7.0, 8), reports=reports
    )
    header, arrays = pack_timed_reports(timed)
    header = {**header, "type": "reports", "envelope": "e0"}
    out = unpack_timed_reports(*decode_message(encode_message(header, arrays)))
    assert isinstance(out, TimedReports)
    assert np.array_equal(out.timestamps, timed.timestamps)
    assert np.array_equal(out.reports.seeds, reports.seeds)


def test_unknown_batch_tag_rejected():
    with pytest.raises(ValueError, match="unknown report batch tag"):
        unpack_report_batch("EvilPickle", {})


# -- pure cores --------------------------------------------------------------


def _envelopes(oracle, values, chunk, rng=1):
    """(envelope_id, report batch) chunks of one privatized population."""
    reports = oracle.privatize(values, rng=rng)
    return [
        (f"e{i}", slice_report_batch(reports, np.arange(s, min(s + chunk, len(values)))))
        for i, s in enumerate(range(0, len(values), chunk))
    ], reports


def test_folder_dedups_and_ships_fresh_accumulators():
    oracle = make_oracle("OUE", 6, 1.0)
    envelopes, reports = _envelopes(oracle, np.arange(60) % 6, 20)
    folder = ShardFolder(oracle, worker_id=0)
    ships = [folder.offer(eid, batch) for eid, batch in envelopes]
    assert all(s is not None for s in ships)
    assert folder.offer("e1", envelopes[1][1]) is None  # redelivery dropped
    assert folder.duplicates == 1
    assert folder.envelopes == 3
    assert folder.reports == 60
    # Each ship hydrates back to exactly its chunk's fold.
    total = oracle.accumulator()
    for ship in ships:
        assert len(ship.panes) == 1
        pane, payload = ship.panes[0]
        assert pane is None  # unwindowed
        total.merge(oracle.accumulator().from_bytes(payload))
    assert np.array_equal(total.finalize(), oracle.estimate_counts(reports))


def test_folder_splits_envelopes_into_event_panes():
    oracle = make_oracle("DE", 4, 1.0)
    window = WindowSpec.event_tumbling(10.0)
    ts = np.array([5.0, 25.0, 7.0, 15.0, 3.0])
    reports = oracle.privatize(np.arange(5) % 4, rng=1)
    folder = ShardFolder(oracle, window=window)
    ship = folder.offer("e0", TimedReports(timestamps=ts, reports=reports))
    panes = {p: oracle.accumulator().from_bytes(b).n_absorbed for p, b in ship.panes}
    assert panes == {0: 3, 1: 1, 2: 1}
    assert ship.frontier == 25.0
    assert folder.frontier == 25.0


def test_folder_rejects_raw_batches_when_windowed():
    oracle = make_oracle("DE", 4, 1.0)
    folder = ShardFolder(oracle, window=WindowSpec.event_tumbling(10.0))
    with pytest.raises(ValueError, match="timed envelopes"):
        folder.offer("e0", oracle.privatize(np.arange(4), rng=1))


def test_combiner_dedups_redelivered_ships():
    oracle = make_oracle("OLH", 6, 1.0)
    envelopes, reports = _envelopes(oracle, np.arange(60) % 6, 15)
    folder = ShardFolder(oracle, worker_id=0)
    core = CombinerCore(oracle, num_workers=1)
    core.register(0)
    ships = [folder.offer(eid, batch) for eid, batch in envelopes]
    for ship in ships:
        assert core.receive(ship) is True
    # Redeliver every ship (worker restart refolding acked envelopes).
    for ship in ships:
        assert core.receive(ship) is False
    assert core.duplicates == len(ships)
    result = core_result_after_drain(core)
    assert result.absorbed_reports == 60
    assert np.array_equal(
        result.estimated_counts, oracle.estimate_counts(reports)
    )


def core_result_after_drain(core):
    for w in range(core.num_workers):
        core.drain(w)
    return core.result()


def test_combiner_dedups_members_across_regrouped_batches():
    # The restart hazard: a worker ships a coalesced batch, dies before
    # acking every member envelope to its client, and the respawned
    # worker (empty fold state) refolds the unacked subset into a
    # differently-grouped batch with a new joined key.  The combiner
    # must recognize the members individually — exactly-once merge is
    # per member envelope, not per batch grouping.
    oracle = make_oracle("OUE", 6, 1.0)
    envelopes, reports = _envelopes(oracle, np.arange(60) % 6, 20)  # e0..e2
    core = CombinerCore(oracle, num_workers=1)
    core.register(0)
    folder = ShardFolder(oracle, worker_id=0)
    ship, _ = folder.offer_batch(envelopes)
    assert ship.envelope_ids == ("e0", "e1", "e2")
    assert core.receive(ship) is True
    # Respawned worker: fresh dedup state, client resends the unacked tail.
    restarted = ShardFolder(oracle, worker_id=0)
    reship, _ = restarted.offer_batch(envelopes[1:])
    assert reship is not None
    assert reship.envelope_id != ship.envelope_id  # new grouping, new key
    assert core.receive(reship) is False  # every member already merged
    assert core.duplicates == 2
    result = core_result_after_drain(core)
    assert result.absorbed_reports == 60  # nothing merged twice
    assert np.array_equal(
        result.estimated_counts, oracle.estimate_counts(reports)
    )


def test_combiner_merges_only_fresh_members_of_regrouped_batch():
    # Partial overlap: the regrouped redelivery mixes an already-merged
    # envelope with genuinely fresh ones.  Only the fresh members merge.
    oracle = make_oracle("OUE", 6, 1.0)
    envelopes, reports = _envelopes(oracle, np.arange(80) % 6, 20)  # e0..e3
    core = CombinerCore(oracle, num_workers=1)
    core.register(0)
    folder = ShardFolder(oracle, worker_id=0)
    first, _ = folder.offer_batch(envelopes[:2])
    assert core.receive(first) is True
    restarted = ShardFolder(oracle, worker_id=0)
    mixed, _ = restarted.offer_batch(envelopes[1:])  # e1 old, e2/e3 fresh
    assert core.receive(mixed) is True  # some members were fresh
    assert core.duplicates == 1
    result = core_result_after_drain(core)
    assert result.absorbed_reports == 80  # e1 counted exactly once
    assert np.array_equal(
        result.estimated_counts, oracle.estimate_counts(reports)
    )


def test_coalesced_ship_sections_round_trip_the_wire():
    from repro.protocol.service import _ship_from_message, _ship_to_message

    oracle = make_oracle("DE", 4, 1.0)
    window = WindowSpec.event_tumbling(10.0)
    folder = ShardFolder(oracle, window=window)
    mk = lambda ts: TimedReports(
        np.asarray(ts, float),
        oracle.privatize(np.arange(len(ts)) % 4, rng=1),
    )
    ship, _ = folder.offer_batch([("a", mk([5.0, 25.0])), ("b", mk([7.0, 15.0]))])
    assert [eid for eid, _ in ship.sections] == ["a", "b"]
    header, arrays = _ship_to_message(ship)
    rebuilt = _ship_from_message(*decode_message(encode_message(header, arrays)))
    assert rebuilt == ship


def test_refused_mixed_batch_counts_nothing_and_stays_retryable():
    # A mixed timed/raw batch is refused whole: the duplicate counter
    # must not keep the pre-validation flags, and every offered id —
    # including the flagged ones — must remain retryable.
    oracle = make_oracle("OUE", 6, 1.0)
    envelopes, _ = _envelopes(oracle, np.arange(40) % 6, 20)  # e0, e1
    timed = TimedReports(np.zeros(20), envelopes[1][1])
    folder = ShardFolder(oracle, worker_id=0)
    assert folder.offer("e0", envelopes[0][1]) is not None
    with pytest.raises(ValueError, match="cannot coalesce"):
        folder.offer_batch(
            [("e0", envelopes[0][1]), ("t0", timed), ("e1", envelopes[1][1])]
        )
    assert folder.duplicates == 0  # the refused batch counted nothing
    assert folder.envelopes == 1
    ship, flags = folder.offer_batch([("e1", envelopes[1][1])])
    assert ship is not None and flags == [False]  # e1 was still retryable


def test_combiner_requires_registration_and_matching_config():
    oracle = make_oracle("OLH", 6, 1.0)
    other = make_oracle("OLH", 6, 2.0)
    folder = ShardFolder(oracle, worker_id=0)
    ship = folder.offer("e0", oracle.privatize(np.arange(6), rng=1))
    core = CombinerCore(oracle, num_workers=1)
    with pytest.raises(ServiceError, match="register"):
        core.receive(ship)
    # Config-fingerprint mismatch: a partial from a differently
    # configured fleet is refused, not merged.
    mismatched = CombinerCore(other, num_workers=1)
    mismatched.register(0)
    with pytest.raises(ValueError):
        mismatched.receive(ship)


def test_merged_watermark_and_sealing_across_workers():
    oracle = make_oracle("DE", 4, 1.0)
    window = WindowSpec.event_tumbling(10.0)
    core = CombinerCore(oracle, num_workers=2, window=window)
    core.register(0)
    core.register(1)

    def timed_ship(worker, eid, ts):
        folder = ShardFolder(oracle, worker, window=window)
        # Rebuild worker-local dedup state per ship for test simplicity.
        reports = oracle.privatize(np.arange(len(ts)) % 4, rng=hash(eid) % 100)
        return folder.offer(eid, TimedReports(np.asarray(ts, float), reports))

    # Worker 0 races ahead; worker 1 has not spoken -> nothing seals.
    core.receive(timed_ship(0, "a", [5.0, 35.0]))
    assert core.merged_frontier == -math.inf
    assert not core.sealed_windows
    # Worker 1 reaches 12.0 -> fleet watermark 12.0 -> pane 0 seals.
    core.receive(timed_ship(1, "b", [8.0, 12.0]))
    assert core.merged_frontier == 12.0
    assert [w.pane for w in core.sealed_windows] == [0]
    assert core.sealed_windows[0].users == 2  # ts 5.0 and 8.0
    # A straggler for the sealed pane counts late, never merges.
    core.receive(timed_ship(0, "c", [2.0]))
    assert core.late == 1
    assert core.absorbed == 4
    # Drain both -> +inf frontiers -> the remaining pane seals.
    core.drain(0)
    core.drain(1)
    result = core.result()
    assert [w.pane for w in result.windows] == [0, 1, 3]
    assert result.absorbed_reports + result.late_reports == 5
    assert sum(w.users for w in result.windows) == result.absorbed_reports


def test_restarted_worker_cannot_regress_the_watermark():
    oracle = make_oracle("DE", 4, 1.0)
    window = WindowSpec.event_tumbling(10.0)
    core = CombinerCore(oracle, num_workers=2, window=window)
    core.register(0)
    core.register(1)
    f0 = ShardFolder(oracle, 0, window=window)
    f1 = ShardFolder(oracle, 1, window=window)
    mk = lambda f, eid, ts: f.offer(
        eid,
        TimedReports(
            np.asarray(ts, float),
            oracle.privatize(np.arange(len(ts)) % 4, rng=1),
        ),
    )
    core.receive(mk(f0, "a", [25.0]))
    core.receive(mk(f1, "b", [31.0]))
    assert core.merged_frontier == 25.0
    # Worker 0 restarts: its fresh folder's frontier restarts low, but
    # the combiner keeps the max per worker — no regression.
    f0b = ShardFolder(oracle, 0, window=window)
    core.receive(mk(f0b, "c", [4.0]))
    assert core.merged_frontier == 25.0


def test_combiner_result_requires_full_drain():
    oracle = make_oracle("DE", 4, 1.0)
    core = CombinerCore(oracle, num_workers=2)
    core.register(0)
    core.drain(0)
    with pytest.raises(ServiceError, match="have not drained"):
        core.result()


# -- loopback service (real sockets) -----------------------------------------


def test_inline_loopback_bit_identical_with_duplicates():
    oracle = make_oracle("OLH", 12, 1.2)
    vals = np.random.default_rng(3).integers(0, 12, size=1200)
    base = run_sharded_collection(
        oracle, vals, num_shards=3, chunk_size=150, rng=17
    )
    svc = run_distributed_collection(
        oracle,
        vals,
        num_ingest=3,
        chunk_size=150,
        rng=17,
        backend="inline",
        faults=FaultPlan(seed=2, duplicate_every=2),
    )
    assert np.array_equal(base.estimated_counts, svc.estimated_counts)
    assert svc.absorbed_reports == 1200
    assert svc.late_reports == 0
    # The duplicates were delivered and dropped at the workers.
    assert sum(w.duplicate_envelopes for w in svc.workers) > 0
    assert svc.ledger is not None and svc.ledger.total_epsilon > 0


def test_inline_loopback_windowed_lateness_accounting():
    rng = np.random.default_rng(9)
    n = 1500
    oracle = make_oracle("OUE", 8, 1.0)
    ts = rng.uniform(0.0, 5 * 60.0, size=n)
    delay = rng.exponential(30.0, size=n) * (rng.random(n) < 0.25)
    arrival = np.argsort(ts + delay, kind="stable")
    svc = run_distributed_collection(
        oracle,
        rng.integers(0, 8, size=n)[arrival],
        num_ingest=3,
        chunk_size=100,
        rng=5,
        timestamps=ts[arrival],
        window=WindowSpec.event_tumbling(60.0, allowed_lateness=10.0),
        placement="round_robin",
        backend="inline",
    )
    assert svc.absorbed_reports + svc.late_reports == n
    assert svc.late_reports > 0  # the injected stragglers were accounted
    assert svc.windows  # panes sealed fleet-wide
    assert sum(w.users for w in svc.windows) == svc.absorbed_reports
    assert svc.merged_frontier == math.inf  # fully drained
    panes = [w.pane for w in svc.windows]
    assert panes == sorted(panes)


def test_process_backend_survives_worker_restart():
    # The acceptance demo: real worker processes, one SIGKILLed
    # mid-stream and respawned, duplicates injected — estimates must be
    # bit-identical to the single-host pipeline.
    oracle = make_oracle("OLH", 10, 1.2)
    vals = np.random.default_rng(4).integers(0, 10, size=800)
    base = run_sharded_collection(
        oracle, vals, num_shards=2, chunk_size=100, rng=23
    )
    svc = run_distributed_collection(
        oracle,
        vals,
        num_ingest=2,
        chunk_size=100,
        rng=23,
        backend="process",
        faults=FaultPlan(
            seed=4,
            duplicate_every=3,
            worker_faults=(WorkerFault(worker=1, after_envelopes=2, kind="restart"),),
        ),
    )
    assert np.array_equal(base.estimated_counts, svc.estimated_counts)
    assert svc.absorbed_reports == 800
    assert svc.backend == "process"


def test_orchestrator_validation():
    oracle = make_oracle("DE", 4, 1.0)
    vals = np.arange(8) % 4
    with pytest.raises(ValueError, match="backend"):
        run_distributed_collection(oracle, vals, backend="carrier-pigeon")
    with pytest.raises(ValueError, match="process"):
        run_distributed_collection(
            oracle,
            vals,
            backend="inline",
            faults=FaultPlan(
                worker_faults=(WorkerFault(worker=0, after_envelopes=1, kind="restart"),)
            ),
        )
    with pytest.raises(ValueError, match="lease_timeout"):
        run_distributed_collection(
            oracle,
            vals,
            backend="inline",
            faults=FaultPlan(
                worker_faults=(WorkerFault(worker=0, after_envelopes=1, kind="kill"),)
            ),
        )
    with pytest.raises(ValueError, match="checkpoint_path"):
        run_distributed_collection(
            oracle, vals, faults=FaultPlan(crash_combiner_at_ships=(1,))
        )
    with pytest.raises(ValueError, match="timestamps"):
        run_distributed_collection(
            oracle, vals, window=WindowSpec.event_tumbling(10.0)
        )
    with pytest.raises(ValueError, match="num_ingest"):
        run_distributed_collection(oracle, vals, num_ingest=9)


# -- fault tolerance over real sockets ---------------------------------------


def test_combiner_crash_restore_bit_identical(tmp_path):
    # The tentpole demo: the combiner is killed between receiving a
    # ship and acking it, a successor restores the checkpoint on the
    # same port, workers reship at-risk + unacked payloads — and the
    # estimates are bit-identical to the crash-free single-host run.
    oracle = make_oracle("OLH", 10, 1.2)
    vals = np.random.default_rng(6).integers(0, 10, size=900)
    base = run_sharded_collection(
        oracle, vals, num_shards=2, chunk_size=90, rng=31
    )
    svc = run_distributed_collection(
        oracle,
        vals,
        num_ingest=2,
        chunk_size=90,
        rng=31,
        backend="inline",
        faults=FaultPlan(seed=8, crash_combiner_at_ships=(3,)),
        checkpoint_path=str(tmp_path / "combiner.ckpt"),
    )
    assert svc.combiner_restarts == 1
    assert svc.checkpoints > 0 and svc.checkpoint_bytes > 0
    assert svc.recovery_seconds > 0
    assert np.array_equal(base.estimated_counts, svc.estimated_counts)
    assert svc.absorbed_reports == 900 and not svc.degraded


def test_combiner_double_crash_with_loose_cadence(tmp_path):
    # Two crashes in one round at a loose checkpoint cadence: each
    # successor restores an older snapshot and the at-risk reshipment
    # covers the gap — still bit-identical.
    oracle = make_oracle("OUE", 8, 1.1)
    vals = np.random.default_rng(8).integers(0, 8, size=800)
    base = run_sharded_collection(
        oracle, vals, num_shards=2, chunk_size=80, rng=13
    )
    svc = run_distributed_collection(
        oracle,
        vals,
        num_ingest=2,
        chunk_size=80,
        rng=13,
        backend="inline",
        faults=FaultPlan(seed=1, crash_combiner_at_ships=(2, 3)),
        checkpoint_path=str(tmp_path / "combiner.ckpt"),
        checkpoint_every_ships=3,
    )
    assert svc.combiner_restarts == 2
    assert np.array_equal(base.estimated_counts, svc.estimated_counts)


def test_dead_worker_evicted_with_exact_loss_accounting():
    # A worker SIGKILLed mid-stream goes silent; the combiner's lease
    # sweep evicts it so the merged watermark and drain can complete,
    # and every one of its reports is accounted: shipped ones absorbed,
    # undelivered ones lost — never silently dropped.
    oracle = make_oracle("OLH", 10, 1.2)
    n = 600
    vals = np.random.default_rng(14).integers(0, 10, size=n)
    svc = run_distributed_collection(
        oracle,
        vals,
        num_ingest=2,
        chunk_size=60,
        rng=19,
        backend="inline",
        lease_timeout=0.5,
        faults=FaultPlan(
            seed=2,
            worker_faults=(WorkerFault(worker=1, after_envelopes=2, kind="kill"),),
        ),
    )
    assert svc.degraded and svc.evicted_workers == (1,)
    assert svc.lost_reports > 0
    assert svc.absorbed_reports + svc.late_reports + svc.lost_reports == n
    assert svc.merged_frontier == math.inf  # the watermark was unblocked
    notes = svc.ledger.notes
    assert any("evicted worker 1" in note for note in notes)
    assert any("degraded round" in note for note in notes)


def test_partitioned_worker_heals_and_recovers_bit_identical():
    # A partition long enough to expire the lease: the worker is
    # evicted, then heals when the link returns and reships everything
    # outstanding — no data loss, bit-identical estimates, but the
    # round is still honestly marked degraded.
    oracle = make_oracle("OUE", 8, 1.1)
    vals = np.random.default_rng(21).integers(0, 8, size=600)
    base = run_sharded_collection(
        oracle, vals, num_shards=2, chunk_size=60, rng=29
    )
    svc = run_distributed_collection(
        oracle,
        vals,
        num_ingest=2,
        chunk_size=60,
        rng=29,
        backend="inline",
        lease_timeout=0.3,
        faults=FaultPlan(
            seed=6,
            worker_faults=(
                WorkerFault(
                    worker=0,
                    after_envelopes=2,
                    kind="partition",
                    partition_seconds=1.2,
                ),
            ),
        ),
    )
    assert svc.degraded and svc.evicted_workers == (0,)
    assert svc.lost_reports == 0 and svc.absorbed_reports == 600
    assert np.array_equal(base.estimated_counts, svc.estimated_counts)


def test_dropped_and_delayed_frames_recovered_by_retransmit():
    # Transport chaos (drops recovered by the ack-timeout retransmit,
    # delays, duplicates) must be bit-invisible.
    oracle = make_oracle("OLH", 10, 1.2)
    vals = np.random.default_rng(33).integers(0, 10, size=600)
    base = run_sharded_collection(
        oracle, vals, num_shards=2, chunk_size=60, rng=37
    )
    svc = run_distributed_collection(
        oracle,
        vals,
        num_ingest=2,
        chunk_size=60,
        rng=37,
        backend="inline",
        faults=FaultPlan(
            seed=12,
            drop_rate=0.25,
            duplicate_rate=0.2,
            delay_rate=0.1,
            delay_seconds=0.01,
            ack_timeout=0.4,
        ),
    )
    assert np.array_equal(base.estimated_counts, svc.estimated_counts)
    assert svc.absorbed_reports == 600 and not svc.degraded


def test_checkpoint_rejects_mismatched_configuration(tmp_path):
    # A checkpoint written by one fleet shape must not silently restore
    # into another: worker-count and window fingerprints are enforced.
    from repro.protocol.transport import CheckpointError

    oracle = make_oracle("DE", 6, 1.0)
    core = CombinerCore(oracle, num_workers=2)
    blob = core.to_checkpoint()
    restored = CombinerCore.from_checkpoint(oracle, blob)
    assert restored.num_workers == 2
    with pytest.raises(CheckpointError, match="window"):
        CombinerCore.from_checkpoint(
            oracle, blob, window=WindowSpec.event_tumbling(5.0)
        )
    with pytest.raises(CheckpointError):
        CombinerCore.from_checkpoint(oracle, b"not a checkpoint")
