"""Event-time streaming: envelopes, watermarks, late arrivals, two-stack.

The engine promises: (1) pane assignment is driven by the *event*
clock, so out-of-order arrival within the allowed lateness lands every
report in its true window; (2) the watermark seals panes exactly when
``max event time − allowed_lateness`` passes their end, and a report
for a sealed pane is counted late — never silently dropped and never
absorbed; (3) every window estimate is bit-identical to the one-shot
batch over the reports absorbed into that window.
"""

import math

import numpy as np
import pytest

from repro.core import TimedReports, batch_length, make_oracle, slice_report_batch
from repro.core.budget import BudgetExceededError, PrivacyLedger
from repro.core.mechanism import HashedReports
from repro.protocol import (
    EventTimeCollector,
    StreamingCollector,
    WindowSpec,
    run_sharded_collection,
    stream_collection,
)
from repro.systems.microsoft import OneBitMean


def _privatized(oracle, n, *, d=8, seed=3):
    gen = np.random.default_rng(seed)
    values = gen.integers(0, d, n)
    return values, oracle.privatize(values, rng=int(seed) + 1)


class TestTimedReports:
    def test_envelope_validates_alignment(self):
        with pytest.raises(ValueError):
            TimedReports(np.array([1.0, 2.0]), np.zeros((3, 4)))
        with pytest.raises(ValueError):
            TimedReports(np.array([[1.0]]), np.zeros((1, 4)))
        with pytest.raises(ValueError):
            TimedReports(np.array([np.nan]), np.zeros((1, 4)))

    def test_select_keeps_alignment(self):
        reports = HashedReports(
            seeds=np.arange(5, dtype=np.uint64), values=np.arange(5) % 3
        )
        timed = TimedReports(np.linspace(0, 1, 5), reports)
        sub = timed.select(np.array([True, False, True, False, True]))
        assert len(sub) == 3
        assert np.array_equal(sub.reports.seeds, [0, 2, 4])
        assert np.array_equal(sub.timestamps, [0.0, 0.5, 1.0])

    def test_slice_report_batch_handles_tuples_and_arrays(self):
        cohorts = np.arange(6)
        bits = np.arange(12).reshape(6, 2)
        sel = np.array([0, 2, 5])
        sliced = slice_report_batch((cohorts, bits), sel)
        assert isinstance(sliced, tuple)
        assert np.array_equal(sliced[0], [0, 2, 5])
        assert np.array_equal(sliced[1], bits[sel])
        assert batch_length((cohorts, bits)) == 6
        assert batch_length(np.zeros((4, 2))) == 4


class TestEventWindowSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            WindowSpec.event_tumbling(0.0)
        with pytest.raises(ValueError):
            WindowSpec.event_tumbling(2.0, allowed_lateness=-1.0)
        with pytest.raises(ValueError):
            WindowSpec.event_sliding(4.0, 1.5)  # 1.5 does not tile 4.0
        with pytest.raises(ValueError):
            WindowSpec.event_sliding(4.0, math.inf)  # NaN pane arithmetic
        with pytest.raises(ValueError):
            WindowSpec.event_tumbling(math.inf)
        with pytest.raises(ValueError):
            WindowSpec("event_tumbling", 2.0, 1.0)  # stride on tumbling
        with pytest.raises(ValueError):
            WindowSpec("tumbling", 10, allowed_lateness=1.0)  # count-time

    def test_geometry(self):
        spec = WindowSpec.event_sliding(4.0, 1.0, origin=10.0)
        assert spec.is_event_time and not spec.is_gapped
        assert spec.num_panes == 4
        assert spec.pane_span == 1.0
        assert spec.pane_bounds(2) == (12.0, 13.0)
        assert spec.window_bounds(5) == (12.0, 16.0)
        gapped = WindowSpec.event_sliding(1.0, 5.0)
        assert gapped.is_gapped and gapped.num_panes == 1
        assert gapped.window_bounds(2) == (10.0, 11.0)
        tumbling = WindowSpec.event_tumbling(2.0)
        assert tumbling.pane_span == 2.0
        assert tumbling.window_bounds(3) == (6.0, 8.0)

    def test_collectors_reject_wrong_spec_kind(self):
        oracle = make_oracle("DE", 4, 1.0)
        with pytest.raises(ValueError):
            EventTimeCollector(oracle, WindowSpec.tumbling(10))
        with pytest.raises(ValueError):
            StreamingCollector(oracle, WindowSpec.event_tumbling(1.0))


class TestEventTimeWindows:
    def test_shuffled_arrival_windows_equal_batches(self, slice_reports):
        oracle = make_oracle("OLH", 8, 1.4)
        n = 900
        _, reports = _privatized(oracle, n)
        ts = np.random.default_rng(5).uniform(0, 9, n)
        perm = np.random.default_rng(6).permutation(n)
        collector = EventTimeCollector(
            oracle, WindowSpec.event_tumbling(3.0, allowed_lateness=100.0)
        )
        for start in range(0, n, 128):
            idx = perm[start : start + 128]
            collector.absorb(TimedReports(ts[idx], slice_reports(reports, idx)))
        result = collector.finish()
        assert result.late_reports == 0
        assert result.absorbed_reports == n
        assert len(result) == 3
        for snap in result:
            mask = (ts >= snap.window_start) & (ts < snap.window_end)
            batch = (
                oracle.accumulator()
                .absorb(slice_reports(reports, mask))
                .finalize()
            )
            assert snap.window_users == int(mask.sum())
            assert np.array_equal(snap.window_estimates, batch)

    def test_event_sliding_overlap(self, slice_reports):
        oracle = make_oracle("OUE", 8, 1.2)
        n = 600
        _, reports = _privatized(oracle, n, seed=9)
        ts = np.sort(np.random.default_rng(10).uniform(0, 6, n))
        result = stream_collection(
            oracle,
            np.random.default_rng(9).integers(0, 8, n),
            window=WindowSpec.event_sliding(2.0, 1.0),
            timestamps=ts,
            chunk_size=100,
            rng=10,
        )
        # One window per pane; each spans (up to) two panes of data.
        assert [s.window_index for s in result] == list(range(len(result)))
        for snap in result:
            assert snap.window_end - snap.window_start == pytest.approx(2.0)
        assert result.absorbed_reports == n

    def test_event_window_bit_identity_via_driver(self, slice_reports):
        # The driver privatizes chunk by chunk; re-privatizing with the
        # same seed reproduces the reports, so windows can be checked
        # against batches over identical randomness.
        oracle = make_oracle("HR", 8, 1.3)
        n = 500
        values = np.random.default_rng(11).integers(0, 8, n)
        ts = np.random.default_rng(12).uniform(0, 5, n)
        result = stream_collection(
            oracle,
            values,
            window=WindowSpec.event_tumbling(1.0, allowed_lateness=10.0),
            timestamps=ts,
            chunk_size=n,  # one chunk → one privatize call
            rng=13,
        )
        reports = oracle.privatize(values, rng=np.random.default_rng(13))
        for snap in result:
            mask = (ts >= snap.window_start) & (ts < snap.window_end)
            batch = (
                oracle.accumulator()
                .absorb(slice_reports(reports, mask))
                .finalize()
            )
            assert np.array_equal(snap.window_estimates, batch)

    def test_gapped_event_windows_sample_each_period(self, slice_reports):
        oracle = make_oracle("DE", 6, 1.0)
        n = 400
        _, reports = _privatized(oracle, n, d=6, seed=20)
        # Period 4.0, window 1.0: only the first quarter of each period
        # lands in a window; the rest joins the cumulative view only.
        ts = np.random.default_rng(21).uniform(0, 8, n)
        collector = EventTimeCollector(
            oracle, WindowSpec.event_sliding(1.0, 4.0, allowed_lateness=10.0)
        )
        collector.absorb(TimedReports(ts, reports))
        result = collector.finish()
        assert result.absorbed_reports == n
        assert result.late_reports == 0
        in_window_total = 0
        for snap in result:
            mask = (ts >= snap.window_start) & (ts < snap.window_end)
            assert snap.window_end - snap.window_start == pytest.approx(1.0)
            assert snap.window_users == int(mask.sum())
            in_window_total += snap.window_users
        assert 0 < in_window_total < n
        # Cumulative still covers everything.
        assert result[-1].total_users == n
        whole = oracle.accumulator().absorb(reports).finalize()
        assert np.array_equal(result[-1].cumulative_estimates, whole)


class TestWatermark:
    def _collector(self, lateness, span=1.0, oracle=None):
        oracle = oracle or make_oracle("DE", 4, 1.0)
        return oracle, EventTimeCollector(
            oracle, WindowSpec.event_tumbling(span, allowed_lateness=lateness)
        )

    def _batch(self, oracle, ts):
        ts = np.asarray(ts, dtype=np.float64)
        reports = oracle.privatize(
            np.zeros(ts.shape[0], dtype=np.int64), rng=1
        )
        return TimedReports(ts, reports)

    def test_zero_lateness_seals_on_advance(self):
        oracle, col = self._collector(0.0)
        col.absorb(self._batch(oracle, [0.2, 0.8]))
        assert col.late_reports == 0
        col.absorb(self._batch(oracle, [1.5]))  # watermark → 1.5: pane 0 sealed
        col.absorb(self._batch(oracle, [0.9]))  # pane 0 is sealed → late
        result = col.finish()
        assert result.late_reports == 1
        assert result.absorbed_reports == 3
        assert [s.window_users for s in result] == [2, 1]

    def test_lateness_keeps_pane_open(self):
        oracle, col = self._collector(1.0)
        col.absorb(self._batch(oracle, [0.2, 0.8]))
        col.absorb(self._batch(oracle, [1.5]))  # watermark 0.5 < pane-0 end
        col.absorb(self._batch(oracle, [0.9]))  # still open → absorbed
        result = col.finish()
        assert result.late_reports == 0
        assert [s.window_users for s in result] == [3, 1]

    def test_report_older_than_every_open_pane_is_counted_late(self):
        oracle, col = self._collector(0.0)
        col.absorb(self._batch(oracle, [5.1]))
        col.absorb(self._batch(oracle, [5.2, 0.3]))  # 0.3: pane 0 long sealed
        result = col.finish()
        assert result.late_reports == 1
        assert result.absorbed_reports == 2
        # The late report shows up in the snapshots' running count.
        assert result[-1].late_reports == 1

    def test_report_newer_than_every_open_pane_seals_them(self):
        oracle, col = self._collector(0.0)
        col.absorb(self._batch(oracle, [0.5]))
        assert col.snapshots == []
        col.absorb(self._batch(oracle, [10.5]))  # far future: pane 0 seals now
        assert [s.window_index for s in col.snapshots][0] == 0
        assert col.snapshots[0].window_users == 1

    def test_duplicate_timestamps_at_window_boundary(self):
        # Half-open panes: every t == 2.0 report belongs to [2, 4), and
        # duplicates travel together no matter how arrival splits them.
        oracle, col = self._collector(0.0, span=2.0)
        col.absorb(self._batch(oracle, [1.0, 2.0, 2.0]))
        col.absorb(self._batch(oracle, [2.0, 3.9]))
        result = col.finish()
        assert result.late_reports == 0
        assert [s.window_users for s in result] == [1, 4]
        assert result[0].window_end == pytest.approx(2.0)
        assert result[1].window_start == pytest.approx(2.0)

    def test_empty_windows_are_emitted_between_data(self):
        oracle, col = self._collector(0.0)
        col.absorb(self._batch(oracle, [0.5]))
        col.absorb(self._batch(oracle, [2.5]))  # pane 1 is dead air
        result = col.finish()
        assert [s.window_index for s in result] == [0, 1, 2]
        empty = result[1]
        assert empty.window_users == 0
        assert empty.window_estimates is None
        assert empty.total_users == 2  # cumulative view unaffected

    def test_empty_windows_finalize_mechanisms_that_reject_n0(self):
        # 1BitMean's finalize raises at n=0; an empty pane must emit a
        # None-estimate window instead of crashing the stream.
        mech = OneBitMean(100.0, 1.0)
        col = EventTimeCollector(
            mech, WindowSpec.event_tumbling(1.0, allowed_lateness=0.0)
        )
        bits = mech.privatize(
            np.random.default_rng(30).uniform(0, 100, 10), rng=31
        )
        col.absorb(TimedReports(np.full(5, 0.5), bits[:5]))
        col.absorb(TimedReports(np.full(5, 2.5), bits[5:]))
        result = col.finish()
        assert result[1].window_estimates is None
        assert result[0].window_users == result[2].window_users == 5

    def test_dead_air_leap_never_seals_past_the_watermark(self):
        # Regression: a far-future report leaps the frontier over dead
        # air, but panes beyond the watermark are still open for late
        # data — a report ahead of the watermark must be absorbed, not
        # counted late.
        oracle, col = self._collector(10.0)
        col.absorb(self._batch(oracle, [0.5]))
        col.absorb(self._batch(oracle, [100.5]))  # watermark 90.5
        col.absorb(self._batch(oracle, [95.0]))  # ahead of the watermark
        assert col.late_reports == 0
        col.absorb(self._batch(oracle, [89.0]))  # behind it: late
        result = col.finish()
        assert result.late_reports == 1
        assert result.absorbed_reports == 3
        assert {s.window_index for s in result if s.window_users} == {0, 95, 100}

    def test_long_dead_air_is_compressed_not_enumerated(self):
        oracle, col = self._collector(0.0)
        col.absorb(self._batch(oracle, [0.5]))
        col.absorb(self._batch(oracle, [10_000_000.5]))
        result = col.finish()
        # Pane 0, one window of silence, then the far-future pane — the
        # millions of identical empty windows in between are elided.
        assert len(result) <= 4
        assert result[0].window_users == 1
        assert result[-1].window_users == 1
        assert result.absorbed_reports == 2

    def test_out_of_range_pane_index_is_rejected_not_wrapped(self):
        # A timestamp whose pane index exceeds int64 must raise, not
        # silently wrap (a wrapped index derails the sealing frontier
        # into an unbounded empty-window loop).
        oracle, col = self._collector(0.0)
        with pytest.raises(ValueError, match="pane index"):
            col.absorb(self._batch(oracle, [1e19, 0.5]))
        assert col.total_users == 0  # rejected before any routing

    def test_nan_timestamps_rejected_without_phantom_charges(self):
        oracle = make_oracle("OLH", 8, 1.0)
        ledger = PrivacyLedger(epsilon_cap=5.0)
        with pytest.raises(ValueError, match="finite"):
            stream_collection(
                oracle,
                np.random.default_rng(56).integers(0, 8, 4),
                window=WindowSpec.event_tumbling(1.0),
                timestamps=np.array([0.1, 0.2, np.nan, 0.3]),
                rng=57,
                ledger=ledger,
            )
        assert len(ledger) == 0  # no phantom pane spends
        col = EventTimeCollector(oracle, WindowSpec.event_tumbling(1.0), ledger=ledger)
        with pytest.raises(ValueError, match="finite"):
            col.charge_for(np.array([np.nan]))
        assert len(ledger) == 0
        col.charge_for(3.0)  # scalar input charges pane 3 cleanly
        assert len(ledger) == 1

    def test_finish_is_idempotent_and_closes_absorption(self):
        oracle, col = self._collector(0.0)
        col.absorb(self._batch(oracle, [0.1]))
        first = col.finish()
        assert len(col.finish()) == len(first)
        with pytest.raises(ValueError):
            col.absorb(self._batch(oracle, [0.2]))

    def test_absorb_requires_envelope(self):
        oracle, col = self._collector(0.0)
        with pytest.raises(TypeError):
            col.absorb(oracle.privatize(np.zeros(3, dtype=np.int64), rng=1))


class TestGapOnlyStreams:
    def test_gap_only_stream_still_emits_windows(self):
        # Sampling spec where every report lands in a gap: the periods'
        # (empty) windows are still emitted and the cumulative view
        # surfaces the gap reports.
        oracle = make_oracle("DE", 4, 1.0)
        spec = WindowSpec.event_sliding(0.5, 2.0, allowed_lateness=0.0)
        reports = oracle.privatize(np.zeros(3, dtype=np.int64), rng=1)
        col = EventTimeCollector(oracle, spec)
        col.absorb(TimedReports(np.array([0.7, 0.9, 2.6]), reports))
        result = col.finish()
        assert result.absorbed_reports == 3 and result.late_reports == 0
        assert len(result) >= 1
        for snap in result:
            assert snap.window_users == 0  # windows sample only [start, start+size)
        assert result[-1].total_users == 3
        whole = oracle.accumulator().absorb(reports).finalize()
        assert np.array_equal(result[-1].cumulative_estimates, whole)


class TestEventTimeAccounting:
    def test_disjoint_users_parallel_per_event_window(self):
        oracle = make_oracle("OLH", 8, 1.25)
        n = 300
        values = np.random.default_rng(40).integers(0, 8, n)
        ts = np.sort(np.random.default_rng(41).uniform(0, 3, n))
        result = stream_collection(
            oracle,
            values,
            window=WindowSpec.event_tumbling(1.0),
            timestamps=ts,
            rng=42,
            user_model="disjoint_users",
        )
        # Parallel composition across event-time windows: worst window.
        assert math.isclose(result.ledger.total_epsilon, 1.25)
        assert len(result.ledger) == 3
        # Spends are keyed by event-time identity, not arrival ordinal.
        assert {s.group for s in result.ledger.spends} == {
            "window-0[0,1)", "window-1[1,2)", "window-2[2,3)"
        }

    def test_disjoint_groups_distinct_at_epoch_timestamps(self):
        # Regression: %g bound formatting alone collides adjacent
        # windows at epoch-second magnitudes; the pane index keeps the
        # parallel groups (and hence the eps total) honest.
        oracle = make_oracle("OLH", 8, 1.0)
        epoch = 1.72e9
        ts = epoch + np.arange(8, dtype=np.float64) * 3600.0
        result = stream_collection(
            oracle,
            np.random.default_rng(58).integers(0, 8, 8),
            window=WindowSpec.event_tumbling(3600.0),
            timestamps=ts,
            rng=59,
            user_model="disjoint_users",
        )
        assert len({s.group for s in result.ledger.spends}) == 8
        assert math.isclose(result.ledger.total_epsilon, 1.0)

    def test_same_users_fresh_composes_sequentially(self):
        oracle = make_oracle("OLH", 8, 1.0)
        n = 300
        ts = np.sort(np.random.default_rng(43).uniform(0, 3, n))
        result = stream_collection(
            oracle,
            np.random.default_rng(44).integers(0, 8, n),
            window=WindowSpec.event_tumbling(1.0),
            timestamps=ts,
            rng=45,
        )
        assert math.isclose(result.ledger.total_epsilon, 3.0)

    def test_capped_ledger_refuses_whole_envelope(self):
        # An envelope spanning two panes where the second pane's charge
        # breaks the cap: the whole envelope is refused before anything
        # absorbs, so a retry after raising the cap cannot double-count.
        oracle = make_oracle("OLH", 8, 1.0)
        ledger = PrivacyLedger(epsilon_cap=1.5)
        col = EventTimeCollector(
            oracle, WindowSpec.event_tumbling(1.0), ledger=ledger
        )
        reports = oracle.privatize(
            np.random.default_rng(48).integers(0, 8, 2), rng=49
        )
        with pytest.raises(BudgetExceededError):
            col.absorb(TimedReports(np.array([0.5, 1.5]), reports))
        assert col.total_users == 0  # nothing absorbed from the envelope
        assert col.late_reports == 0
        assert col.watermark == -math.inf  # nor was the watermark moved
        assert len(ledger) == 0  # and no spend was recorded for any pane
        # Raising the cap lets the identical envelope through cleanly.
        ledger.epsilon_cap = 2.0
        col.absorb(TimedReports(np.array([0.5, 1.5]), reports))
        assert col.total_users == 2
        assert len(ledger) == 2

    def test_driver_charges_before_privatizing(self):
        # The event driver knows pane identities from the timestamps, so
        # the refused window's clients are never privatized: privatize
        # runs once (window 0) and the second chunk is refused up front.
        calls = []
        inner = make_oracle("OLH", 8, 1.0)

        class _Counting:
            def __getattr__(self, name):
                return getattr(inner, name)

            def privatize(self, values, rng=None):
                calls.append(len(values))
                return inner.privatize(values, rng=rng)

        ledger = PrivacyLedger(epsilon_cap=1.5)
        ts = np.concatenate([np.full(50, 0.5), np.full(50, 1.5)])
        with pytest.raises(BudgetExceededError):
            stream_collection(
                _Counting(),
                np.random.default_rng(54).integers(0, 8, 100),
                window=WindowSpec.event_tumbling(1.0),
                timestamps=ts,
                chunk_size=50,
                rng=55,
                ledger=ledger,
            )
        assert calls == [50]  # window 1's clients never randomized
        assert len(ledger) == 1

    def test_refused_envelope_counts_no_late_reports(self):
        # A refused envelope is refused whole: its late stragglers are
        # not counted either, so a retry cannot double-count them.
        oracle = make_oracle("OLH", 8, 1.0)
        ledger = PrivacyLedger(epsilon_cap=2.5)
        col = EventTimeCollector(
            oracle, WindowSpec.event_tumbling(1.0), ledger=ledger
        )
        reports = oracle.privatize(
            np.random.default_rng(52).integers(0, 8, 4), rng=53
        )
        col.absorb(
            TimedReports(np.array([0.5, 5.5]), slice_report_batch(reports, np.arange(2)))
        )
        # Envelope: one straggler for long-sealed pane 0 + one report
        # opening over-budget pane 7.
        with pytest.raises(BudgetExceededError):
            col.absorb(
                TimedReports(
                    np.array([0.2, 7.5]), slice_report_batch(reports, np.arange(2, 4))
                )
            )
        assert col.late_reports == 0
        ledger.epsilon_cap = 3.5
        col.absorb(
            TimedReports(
                np.array([0.2, 7.5]), slice_report_batch(reports, np.arange(2, 4))
            )
        )
        result = col.finish()
        assert result.late_reports == 1  # counted exactly once, on success
        assert result.absorbed_reports == 3

    def test_capped_ledger_refuses_before_pane_absorbs(self):
        oracle = make_oracle("OLH", 8, 1.0)
        ledger = PrivacyLedger(epsilon_cap=1.5)
        col = EventTimeCollector(
            oracle, WindowSpec.event_tumbling(1.0), ledger=ledger
        )
        reports = oracle.privatize(
            np.random.default_rng(46).integers(0, 8, 20), rng=47
        )
        col.absorb(TimedReports(np.full(10, 0.5), slice_report_batch(reports, np.arange(10))))
        with pytest.raises(BudgetExceededError):
            col.absorb(
                TimedReports(
                    np.full(10, 1.5), slice_report_batch(reports, np.arange(10, 20))
                )
            )
        assert len(ledger) == 1
        assert col.total_users == 10  # the refused pane absorbed nothing


class TestShardedTimestamps:
    def test_event_span_recorded_per_shard_and_overall(self):
        oracle = make_oracle("OUE", 8, 1.0)
        n = 200
        values = np.random.default_rng(50).integers(0, 8, n)
        ts = np.linspace(5.0, 7.0, n)
        stats = run_sharded_collection(
            oracle, values, num_shards=4, chunk_size=32, rng=51, timestamps=ts
        )
        assert stats.event_span == (5.0, 7.0)
        assert len(stats.shards) == 4
        lows = [s.event_span[0] for s in stats.shards]
        highs = [s.event_span[1] for s in stats.shards]
        assert lows == sorted(lows) and highs == sorted(highs)
        assert stats.shards[0].event_span[0] == 5.0
        assert stats.shards[-1].event_span[1] == 7.0
        # Timestamps never change the estimates.
        plain = run_sharded_collection(
            oracle, values, num_shards=4, chunk_size=32, rng=51
        )
        assert np.array_equal(stats.estimated_counts, plain.estimated_counts)
        assert plain.event_span is None

    def test_misaligned_timestamps_rejected(self):
        oracle = make_oracle("DE", 4, 1.0)
        with pytest.raises(ValueError):
            run_sharded_collection(
                oracle, np.arange(4), num_shards=2, timestamps=np.arange(3)
            )

    def test_driver_validation(self):
        oracle = make_oracle("DE", 4, 1.0)
        with pytest.raises(ValueError):
            stream_collection(
                oracle,
                np.arange(4),
                window=WindowSpec.event_tumbling(1.0),  # no timestamps
            )
        with pytest.raises(ValueError):
            stream_collection(
                oracle,
                np.arange(4),
                window_size=2,
                timestamps=np.arange(4.0),  # count windows take no timestamps
            )
