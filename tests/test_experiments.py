"""Smoke tests for every experiment module at miniature scale.

These guarantee that each ``python -m repro.experiments.*`` entry point
runs end-to-end and produces a structurally valid table.  Benchmarks run
the full-scale versions; here the parameters are shrunk so the whole
file stays fast.
"""

import pytest

from repro.eval import Table
from repro.experiments import EXPERIMENT_MODULES, get_experiment

TINY = {
    "E1": dict(domain_size=16, n=2_000, epsilons=(0.5, 2.0), seed=1),
    "E2": dict(domains=(16, 64), n=2_000, seed=2),
    "E3": dict(domain_size=16, n=2_000, repetitions=5, seed=3),
    "E4": dict(num_urls=64, populations=(5_000,), seed=4),
    "E5": dict(num_words=32, n=5_000, widths=(64,), depth=8, seed=5),
    "E6": dict(n=2_000, num_rounds=4, persistences=(0.9,), seed=6),
    "E7": dict(bits=10, n=10_000, k=4, num_heavy=12, epsilons=(2.0,), seed=7),
    "E8": dict(num_attributes=5, n=5_000, ks=(1, 2), seed=8),
    "E9": dict(n=5_000, grid_sizes=(4, 8), num_queries=4, seed=9),
    "E10": dict(n=100, epsilons=(1.0,), repetitions=1, seed=10),
    "E11": dict(
        domain_size=64, n=10_000, optin_fractions=(0.05,), repetitions=1,
        seed=11,
    ),
    "E12": dict(domain_size=16, populations=(500, 2_000), repetitions=2, seed=12),
    "E13": dict(rounds=(1, 8)),
    "E14": dict(
        domain_size=16, n=4_000, shard_counts=(1, 3), chunk_sizes=(512,),
        pivot_shards=2, pivot_chunk=1_024, workers=2, seed=14,
    ),
    "E15": dict(
        domain_size=16, n=4_000, num_shards=2, chunk_size=512, workers=2,
        num_windows=3, seed=15,
    ),
    "E16": dict(
        domain_size=16, n=4_000, num_shards=2, chunk_size=512, workers=2,
        backends=("serial",), drift_steps=4, seed=16,
    ),
    "E17": dict(
        domain_size=16, n=4_000, chunk_size=512, pane_counts=(2, 4),
        lateness_sweep=(0.0, 0.5), drift_steps=4, seed=17,
    ),
    "E18": dict(
        n=4_000, olh_domains=(16,), cms_k=8, cms_m=64, cms_candidates=64,
        bloom_bits=32, bloom_hashes=2, bloom_candidates=256,
        shard_counts=(1, 2), chunk_size=512, workers=2, seed=18,
    ),
    "E19": dict(
        domain_size=16, n=4_000, chunk_size=512, gap_sweep=(1.0, 6.0),
        bridge_chunks=(64, 1_024), drift_steps=4, seed=19,
    ),
    "E20": dict(
        domain_size=16, n=4_000, chunk_size=512, ingest_sweep=(1, 2),
        backend="inline", duplicate_every=3, drift_steps=4, seed=20,
    ),
    "E21": dict(
        domain_size=16, n=4_000, chunk_size=512, cadence_sweep=(1, 4),
        crash_at_ship=2, lease_timeout=0.4, drift_steps=4, seed=21,
    ),
    "A1": dict(domain_size=16, n=1_000, epsilons=(1.0,)),
    "A2": dict(domain_size=32, n=2_000, epsilons=(1.0,), gs=(2, 4), seed=31),
    "A3": dict(num_buckets=16, n=4_000, ds=(1, 4, 16), seed=32),
    "A4": dict(
        bits=10, n=10_000, k=4, beam_factors=(1, 2), step_bits=(2,), seed=33
    ),
    "A5": dict(
        domain_size=128, n=10_000, top_k=2, head_size=4, epsilons=(2.0,),
        repetitions=1, seed=34,
    ),
}


@pytest.mark.parametrize("experiment_id", sorted(EXPERIMENT_MODULES))
def test_experiment_runs_and_renders(experiment_id):
    module = get_experiment(experiment_id)
    table = module.run(**TINY[experiment_id])
    assert isinstance(table, Table)
    assert len(table.rows) >= 1
    rendered = table.render()
    assert table.title in rendered
    # every row matches the header width (Table enforces on add; re-check)
    for row in table.rows:
        assert len(row) == len(table.columns)


def test_registry_is_complete():
    assert set(TINY) == set(EXPERIMENT_MODULES)


def test_unknown_experiment_rejected():
    with pytest.raises(ValueError, match="unknown experiment"):
        get_experiment("E99")
