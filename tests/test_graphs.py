"""Tests for LDPGen graph synthesis and graph metrics."""

import networkx as nx
import numpy as np
import pytest

from repro.graphs import (
    clustering_gap,
    degree_distribution_distance,
    edge_count_relative_error,
    edge_rr_graph,
    graph_report,
    ldpgen_synthesize,
    modularity_under_labels,
)
from repro.workloads import powerlaw_graph, sbm_graph


@pytest.fixture(scope="module")
def community_graph():
    return sbm_graph(400, 4, p_in=0.1, p_out=0.005, rng=3)


class TestWorkloads:
    def test_sbm_shapes(self, community_graph):
        graph, labels = community_graph
        assert graph.number_of_nodes() == 400
        assert labels.shape == (400,)
        assert set(np.unique(labels)) == {0, 1, 2, 3}

    def test_sbm_has_community_structure(self, community_graph):
        graph, labels = community_graph
        assert modularity_under_labels(graph, labels) > 0.3

    def test_sbm_validation(self):
        with pytest.raises(ValueError, match="p_out must be <"):
            sbm_graph(100, 2, p_in=0.01, p_out=0.05)

    def test_powerlaw_heavy_tail(self):
        graph = powerlaw_graph(500, 3, rng=5)
        degrees = sorted((d for _, d in graph.degree()), reverse=True)
        assert degrees[0] > 3 * np.median(degrees)

    def test_powerlaw_validation(self):
        with pytest.raises(ValueError):
            powerlaw_graph(5, 5)


class TestLdpGen:
    def test_returns_graph_same_node_count(self, community_graph):
        graph, _ = community_graph
        result = ldpgen_synthesize(graph, 2.0, rng=7)
        assert result.graph.number_of_nodes() == 400
        assert result.epsilon_spent == 2.0

    def test_edge_count_preserved_roughly(self, community_graph):
        graph, _ = community_graph
        result = ldpgen_synthesize(graph, 2.0, rng=9)
        assert edge_count_relative_error(graph, result.graph) < 0.35

    def test_block_probabilities_valid(self, community_graph):
        graph, _ = community_graph
        result = ldpgen_synthesize(graph, 2.0, rng=11)
        assert np.all(result.block_probabilities >= 0)
        assert np.all(result.block_probabilities <= 1)
        assert np.allclose(
            result.block_probabilities, result.block_probabilities.T
        )

    def test_better_with_more_budget(self, community_graph):
        """More ε → degree distribution closer (averaged over runs)."""
        graph, _ = community_graph
        weak = np.mean(
            [
                degree_distribution_distance(
                    graph, ldpgen_synthesize(graph, 0.25, rng=r).graph
                )
                for r in range(3)
            ]
        )
        strong = np.mean(
            [
                degree_distribution_distance(
                    graph, ldpgen_synthesize(graph, 8.0, rng=r).graph
                )
                for r in range(3)
            ]
        )
        assert strong <= weak + 0.05

    def test_tiny_graph_rejected(self):
        with pytest.raises(ValueError):
            ldpgen_synthesize(nx.path_graph(3), 1.0)

    def test_community_structure_survives_better_than_edge_rr(
        self, community_graph
    ):
        """LDPGen's headline claim is *relative*: at matched ε it retains
        more of the original community structure than edge-RR, whose
        de-biased output is noise-edge dominated at practical ε."""
        graph, labels = community_graph
        eps = 1.5
        ldpgen_mod = np.mean(
            [
                modularity_under_labels(
                    ldpgen_synthesize(graph, eps, rng=r).graph, labels
                )
                for r in range(3)
            ]
        )
        edge_rr_mod = np.mean(
            [
                modularity_under_labels(edge_rr_graph(graph, eps, rng=r), labels)
                for r in range(3)
            ]
        )
        assert ldpgen_mod > edge_rr_mod
        assert ldpgen_mod > 0.02


class TestEdgeRR:
    def test_node_count_preserved(self, community_graph):
        graph, _ = community_graph
        noisy = edge_rr_graph(graph, 2.0, rng=17)
        assert noisy.number_of_nodes() == 400

    def test_edge_count_debiased(self, community_graph):
        graph, _ = community_graph
        noisy = edge_rr_graph(graph, 2.0, rng=19)
        assert edge_count_relative_error(graph, noisy) < 0.5

    def test_destroys_communities_at_low_epsilon(self, community_graph):
        graph, labels = community_graph
        noisy = edge_rr_graph(graph, 0.5, rng=23)
        original_modularity = modularity_under_labels(graph, labels)
        noisy_modularity = modularity_under_labels(noisy, labels)
        assert noisy_modularity < 0.5 * original_modularity


class TestMetrics:
    def test_identity_graph_zero_distance(self, community_graph):
        graph, _ = community_graph
        assert degree_distribution_distance(graph, graph) == 0.0
        assert clustering_gap(graph, graph) == 0.0
        assert edge_count_relative_error(graph, graph) == 0.0

    def test_report_keys(self, community_graph):
        graph, _ = community_graph
        report = graph_report(graph, graph)
        assert set(report) == {"degree_tv", "clustering_gap", "edge_rel_error"}

    def test_empty_vs_full(self):
        empty = nx.Graph()
        empty.add_nodes_from(range(10))
        full = nx.complete_graph(10)
        assert degree_distribution_distance(empty, full) == 1.0

    def test_modularity_label_shape_check(self, community_graph):
        graph, _ = community_graph
        with pytest.raises(ValueError):
            modularity_under_labels(graph, np.zeros(3, dtype=int))
