"""Tests for Harmony-style multidimensional mean estimation."""

import math

import numpy as np
import pytest

from repro.numeric import HarmonyMean
from repro.numeric.harmony import HarmonyReports


@pytest.fixture(scope="module")
def vectors():
    gen = np.random.default_rng(61)
    d = 8
    means = gen.uniform(-0.6, 0.6, d)
    return np.clip(means + gen.normal(0, 0.2, (60_000, d)), -1, 1), d


class TestPrivatize:
    def test_report_structure(self, vectors):
        arr, d = vectors
        hm = HarmonyMean(d, 1.0)
        reports = hm.privatize(arr[:100], rng=1)
        assert len(reports) == 100
        assert reports.dimensions.max() < d
        assert np.all(np.isclose(np.abs(reports.values), d * hm.magnitude))

    def test_shape_validation(self):
        hm = HarmonyMean(4, 1.0)
        with pytest.raises(ValueError, match="shape"):
            hm.privatize(np.zeros((10, 3)), rng=1)

    def test_range_validation(self):
        hm = HarmonyMean(2, 1.0)
        with pytest.raises(ValueError, match="lie in"):
            hm.privatize(np.full((5, 2), 1.5), rng=1)

    def test_nan_rejected(self):
        hm = HarmonyMean(2, 1.0)
        bad = np.zeros((3, 2))
        bad[0, 0] = np.nan
        with pytest.raises(ValueError, match="finite"):
            hm.privatize(bad, rng=1)


class TestEstimate:
    def test_unbiased_per_dimension(self, vectors):
        arr, d = vectors
        hm = HarmonyMean(d, 1.0)
        reports = hm.privatize(arr, rng=3)
        est = hm.estimate_means(reports)
        truth = arr.mean(axis=0)
        sd = math.sqrt(hm.mean_variance(arr.shape[0]))
        assert np.all(np.abs(est - truth) < 5 * sd)

    def test_variance_empirical(self, vectors):
        arr, d = vectors
        hm = HarmonyMean(d, 1.0)
        sub = arr[:4000]
        ests = [hm.estimate_means(hm.privatize(sub, rng=r))[0] for r in range(40)]
        emp = float(np.var(ests, ddof=1))
        ana = hm.mean_variance(4000)
        assert 0.4 * ana < emp < 2.0 * ana

    def test_sampling_beats_budget_splitting(self):
        hm = HarmonyMean(8, 1.0)
        assert hm.mean_variance(1000) < hm.naive_split_variance(1000)

    def test_wrong_type_rejected(self):
        hm = HarmonyMean(2, 1.0)
        with pytest.raises(TypeError):
            hm.estimate_means(np.zeros(5))

    def test_tampered_values_rejected(self, vectors):
        arr, d = vectors
        hm = HarmonyMean(d, 1.0)
        reports = hm.privatize(arr[:10], rng=5)
        bad = HarmonyReports(
            dimensions=reports.dimensions,
            values=reports.values * 0.5,
        )
        with pytest.raises(ValueError, match="±"):
            hm.estimate_means(bad)


class TestPrivacy:
    @pytest.mark.parametrize("epsilon", [0.5, 1.0, 2.0])
    def test_ratio_exact(self, epsilon):
        hm = HarmonyMean(4, epsilon)
        assert math.isclose(hm.max_privacy_ratio(), math.exp(epsilon), rel_tol=1e-9)

    def test_variance_linear_in_d(self):
        v4 = HarmonyMean(4, 1.0).mean_variance(1000)
        v16 = HarmonyMean(16, 1.0).mean_variance(1000)
        assert math.isclose(v16 / v4, 4.0, rel_tol=1e-9)
