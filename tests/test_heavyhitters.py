"""Tests for the three heavy-hitter protocols."""

import numpy as np
import pytest

from repro.eval import topk_f1
from repro.heavyhitters import (
    HeavyHitterResult,
    bitstogram_heavy_hitters,
    pem_heavy_hitters,
    treehist_heavy_hitters,
)
from repro.workloads import sample_from_frequencies, zipf_frequencies

BITS = 12


@pytest.fixture(scope="module")
def heavy_population():
    """n=80k users over a 2^12 domain; 16 planted heavy values."""
    gen = np.random.default_rng(17)
    heavy_ids = gen.choice(1 << BITS, size=16, replace=False).astype(np.int64)
    freqs = zipf_frequencies(16, 1.4)
    idx = sample_from_frequencies(freqs, 80_000, rng=19)
    values = heavy_ids[idx]
    order = np.argsort(-np.bincount(idx, minlength=16))
    top8 = set(int(heavy_ids[i]) for i in order[:8])
    return values, top8, set(int(v) for v in heavy_ids)


class TestPem:
    def test_finds_top_hitters(self, heavy_population):
        values, top8, _ = heavy_population
        result = pem_heavy_hitters(values, BITS, 2.0, k=8, rng=3)
        assert topk_f1(top8, set(result.items)) >= 0.6

    def test_result_sorted_by_count(self, heavy_population):
        values, _, _ = heavy_population
        result = pem_heavy_hitters(values, BITS, 2.0, k=8, rng=5)
        assert result.counts == sorted(result.counts, reverse=True)

    def test_returns_at_most_k(self, heavy_population):
        values, _, _ = heavy_population
        result = pem_heavy_hitters(values, BITS, 2.0, k=5, rng=7)
        assert len(result.items) <= 5

    def test_counts_scaled_to_population(self, heavy_population):
        values, _, all_heavy = heavy_population
        result = pem_heavy_hitters(values, BITS, 2.0, k=4, rng=9)
        truth = {
            v: float((values == v).sum()) for v in result.items if v in all_heavy
        }
        for item, count in zip(result.items, result.counts):
            if item in truth and truth[item] > 3000:
                assert 0.5 * truth[item] < count < 1.8 * truth[item]

    def test_beam_wider_is_no_worse_usually(self, heavy_population):
        values, top8, _ = heavy_population
        narrow = pem_heavy_hitters(values, BITS, 2.0, k=8, beam_factor=1, rng=11)
        wide = pem_heavy_hitters(values, BITS, 2.0, k=8, beam_factor=8, rng=11)
        assert wide.candidates_evaluated > narrow.candidates_evaluated

    def test_initial_bits_validation(self, heavy_population):
        values, _, _ = heavy_population
        with pytest.raises(ValueError, match="cannot exceed"):
            pem_heavy_hitters(values, BITS, 2.0, k=4, initial_bits=13)

    def test_rejects_out_of_domain_values(self):
        with pytest.raises(ValueError):
            pem_heavy_hitters(np.asarray([1 << BITS]), BITS, 2.0, k=2)


class TestTreeHist:
    def test_finds_heavy_values(self, heavy_population):
        values, top8, _ = heavy_population
        result = treehist_heavy_hitters(values, BITS, 2.0, rng=13)
        found = result.as_set()
        # thresholding finds the heavy head, maybe not all 8
        assert len(found & top8) >= 4

    def test_no_false_positives_on_uniform(self):
        gen = np.random.default_rng(23)
        values = gen.integers(0, 1 << BITS, size=30_000)
        result = treehist_heavy_hitters(values, BITS, 1.0, rng=29)
        # uniform over 4096 values: none should clear a 3σ threshold
        assert len(result.items) <= 3

    def test_threshold_validation(self, heavy_population):
        values, _, _ = heavy_population
        with pytest.raises(ValueError):
            treehist_heavy_hitters(values, BITS, 2.0, threshold_sds=0.0)

    def test_max_frontier_respected(self, heavy_population):
        values, _, _ = heavy_population
        result = treehist_heavy_hitters(values, BITS, 2.0, max_frontier=4, rng=31)
        assert len(result.items) <= 8  # 4 survivors × 2 children


class TestBitstogram:
    def test_finds_top_hitters(self, heavy_population):
        values, top8, _ = heavy_population
        result = bitstogram_heavy_hitters(values, BITS, 2.0, k=8, rng=37)
        assert len(set(result.items) & top8) >= 3

    def test_verification_filters_chimeras(self, heavy_population):
        values, _, all_heavy = heavy_population
        result = bitstogram_heavy_hitters(values, BITS, 2.0, k=16, rng=41)
        # every returned item must be a real heavy value (verified),
        # chimeric bit-mixes are filtered by the final FO
        real = sum(1 for item in result.items if item in all_heavy)
        assert real >= len(result.items) - 2

    def test_result_type(self, heavy_population):
        values, _, _ = heavy_population
        result = bitstogram_heavy_hitters(values, BITS, 1.0, k=4, rng=43)
        assert isinstance(result, HeavyHitterResult)


class TestCommon:
    def test_split_groups_partition(self):
        from repro.heavyhitters.common import split_groups

        groups = split_groups(10_000, 7, rng=3)
        assert groups.shape == (10_000,)
        assert set(np.unique(groups)) == set(range(7))

    def test_f1_improves_with_epsilon(self, heavy_population):
        values, top8, _ = heavy_population
        weak = pem_heavy_hitters(values, BITS, 0.5, k=8, rng=47)
        strong = pem_heavy_hitters(values, BITS, 4.0, k=8, rng=47)
        assert topk_f1(top8, set(strong.items)) >= topk_f1(top8, set(weak.items))
