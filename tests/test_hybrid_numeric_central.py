"""Tests for BLENDER, local mean mechanisms, and centralized baselines."""

import math

import numpy as np
import pytest

from repro.central import (
    central_count_variance,
    central_histogram,
    central_mean,
    geometric_histogram,
)
from repro.hybrid import blender_estimate
from repro.numeric import DuchiMean, LocalLaplaceMean
from repro.workloads import sample_zipf, true_counts


@pytest.fixture(scope="module")
def zipf_pop():
    values, _ = sample_zipf(128, 60_000, exponent=1.2, rng=71)
    return values, true_counts(values, 128)


class TestBlender:
    def test_head_contains_true_top(self, zipf_pop):
        values, counts = zipf_pop
        result = blender_estimate(values, 128, 1.0, optin_fraction=0.05, rng=3)
        true_top8 = set(int(v) for v in np.argsort(-counts)[:8])
        assert true_top8 <= set(int(v) for v in result.head_list)

    def test_blended_beats_both_components(self, zipf_pop):
        values, counts = zipf_pop
        n = values.shape[0]
        mses = {"blend": [], "optin": [], "client": []}
        for rep in range(5):
            result = blender_estimate(
                values, 128, 1.0, optin_fraction=0.05, rng=100 + rep
            )
            truth = counts[result.head_list] / n
            mses["blend"].append(np.mean((result.blended_frequencies - truth) ** 2))
            mses["optin"].append(np.mean((result.optin_frequencies - truth) ** 2))
            mses["client"].append(np.mean((result.client_frequencies - truth) ** 2))
        assert np.mean(mses["blend"]) <= np.mean(mses["optin"]) * 1.05
        assert np.mean(mses["blend"]) <= np.mean(mses["client"]) * 1.05

    def test_weights_in_unit_interval(self, zipf_pop):
        values, _ = zipf_pop
        result = blender_estimate(values, 128, 1.0, rng=5)
        assert np.all(result.optin_weight >= 0)
        assert np.all(result.optin_weight <= 1)

    def test_regression_small_epsilon_head_counts_are_clamped(self, zipf_pop):
        # At small ε the central histogram's Laplace noise pushes rare
        # head counts negative; those used to flow into optin_freq (a
        # negative frequency) and through f(1−f) into the inverse-
        # variance weights.  Counts are clamped at 0 first.
        # head_size == domain_size forces rare values into the head, where
        # the noisy counts go negative with near-certainty at this ε.
        values, _ = zipf_pop
        for rep in range(4):
            result = blender_estimate(
                values, 128, 0.05, optin_fraction=0.05, head_size=128,
                rng=400 + rep,
            )
            assert np.all(result.optin_frequencies >= 0.0)
            assert np.all(np.isfinite(result.blended_frequencies))
            assert np.all(result.optin_weight >= 0.0)
            assert np.all(result.optin_weight <= 1.0)

    def test_more_optin_shifts_weight(self, zipf_pop):
        values, _ = zipf_pop
        small = blender_estimate(values, 128, 1.0, optin_fraction=0.02, rng=7)
        large = blender_estimate(values, 128, 1.0, optin_fraction=0.30, rng=7)
        assert large.optin_weight.mean() > small.optin_weight.mean()

    def test_fraction_validation(self, zipf_pop):
        values, _ = zipf_pop
        with pytest.raises(ValueError):
            blender_estimate(values, 128, 1.0, optin_fraction=0.0)

    def test_as_dict(self, zipf_pop):
        values, _ = zipf_pop
        result = blender_estimate(values, 128, 1.0, head_size=8, rng=9)
        d = result.as_dict()
        assert len(d) == 8


class TestDuchiMean:
    def test_reports_are_pm_b(self):
        dm = DuchiMean(1.0)
        reports = dm.privatize(np.linspace(-1, 1, 100), rng=1)
        assert np.all(np.isclose(np.abs(reports), dm.magnitude))

    def test_unbiased(self):
        dm = DuchiMean(1.0)
        gen = np.random.default_rng(3)
        xs = gen.uniform(-0.8, 0.4, 80_000)
        est = dm.estimate_mean(dm.privatize(xs, rng=5))
        sd = math.sqrt(dm.mean_variance(80_000, float(xs.mean())))
        assert abs(est - xs.mean()) < 5 * sd

    def test_variance_empirical(self):
        dm = DuchiMean(1.0)
        xs = np.full(3000, 0.3)
        ests = [dm.estimate_mean(dm.privatize(xs, rng=r)) for r in range(60)]
        emp = float(np.var(ests, ddof=1))
        ana = dm.mean_variance(3000, 0.3)
        assert 0.5 * ana < emp < 1.9 * ana

    def test_range_validation(self):
        dm = DuchiMean(1.0)
        with pytest.raises(ValueError):
            dm.privatize(np.asarray([1.2]), rng=1)

    def test_estimate_rejects_non_pm_b(self):
        dm = DuchiMean(1.0)
        with pytest.raises(ValueError):
            dm.estimate_mean(np.asarray([0.5]))

    def test_duchi_beats_local_laplace_at_small_epsilon(self):
        dm = DuchiMean(0.5)
        ll = LocalLaplaceMean(0.5)
        assert dm.mean_variance(1000) < ll.mean_variance(1000)

    def test_minimax_rate(self):
        """Variance scales as 1/(ε²n) for small ε: B ≈ 2/ε."""
        v1 = DuchiMean(0.1).mean_variance(1000)
        v2 = DuchiMean(0.2).mean_variance(1000)
        assert 3.0 < v1 / v2 < 5.0  # ≈4 = (0.2/0.1)²


class TestLocalLaplace:
    def test_unbiased(self):
        ll = LocalLaplaceMean(1.0)
        gen = np.random.default_rng(7)
        xs = gen.uniform(-0.5, 0.5, 50_000)
        est = ll.estimate_mean(ll.privatize(xs, rng=9))
        sd = math.sqrt(ll.mean_variance(50_000))
        assert abs(est - xs.mean()) < 5 * sd

    def test_range_validation(self):
        ll = LocalLaplaceMean(1.0)
        with pytest.raises(ValueError):
            ll.privatize(np.asarray([-2.0]), rng=1)


class TestCentral:
    def test_histogram_unbiased(self, zipf_pop):
        values, counts = zipf_pop
        noisy = central_histogram(values, 128, 1.0, rng=3)
        sd = math.sqrt(central_count_variance(1.0))
        assert np.all(np.abs(noisy - counts) < 6 * sd)

    def test_geometric_integer_counts(self, zipf_pop):
        values, counts = zipf_pop
        noisy = geometric_histogram(values, 128, 1.0, rng=5)
        assert np.all(noisy == np.round(noisy))
        assert np.all(np.abs(noisy - counts) < 40)

    def test_variance_n_free(self):
        assert central_count_variance(1.0) == 8.0

    def test_central_mean_accuracy(self):
        gen = np.random.default_rng(11)
        xs = gen.uniform(0, 1, 10_000)
        est = central_mean(xs, 0.0, 1.0, 1.0, rng=13)
        assert abs(est - xs.mean()) < 0.01

    def test_central_mean_range_validation(self):
        with pytest.raises(ValueError):
            central_mean(np.asarray([0.5]), 1.0, 0.0, 1.0)

    def test_central_vs_local_gap_grows_with_n(self):
        """Per-count sd: central flat, local ∝ √n — the E12 claim."""
        from repro.core import make_oracle

        for n in (1_000, 100_000):
            local_sd = make_oracle("OLH", 64, 1.0).count_stddev(n)
            central_sd = math.sqrt(central_count_variance(1.0))
            ratio = local_sd / central_sd
            expected = math.sqrt(n)
            assert 0.1 * expected < ratio < 10 * expected
