"""Cross-module integration tests: full pipelines under one roof.

Each test exercises a realistic multi-component path — workload →
mechanism → protocol → metrics — the way the examples and experiments
compose the library, including failure injection at module boundaries.
"""

import numpy as np
import pytest

from repro.core import (
    ORACLE_REGISTRY,
    PrivacyLedger,
    make_oracle,
)
from repro.core.budget import BudgetExceededError
from repro.eval import l1_error, topk_set
from repro.protocol import run_collection
from repro.workloads import sample_zipf, true_counts


class TestProtocolAcrossOracles:
    @pytest.mark.parametrize("name", list(ORACLE_REGISTRY))
    def test_full_round(self, name, small_population):
        values, counts = small_population
        oracle = make_oracle(name, 16, 1.0)
        stats = run_collection(oracle, values, rng=3)
        assert stats.estimated_counts.shape == (16,)
        # reported top-4 overlaps the true top-4 for all oracles at ε=1
        overlap = topk_set(counts, 4) & topk_set(stats.estimated_counts, 4)
        assert len(overlap) >= 2, name

    def test_bytes_ordering_matches_design(self, small_population):
        """Communication: HR < OLH-style pairs < unary rows."""
        values, _ = small_population
        sizes = {}
        for name in ("HR", "OLH", "OUE"):
            oracle = make_oracle(name, 16, 1.0)
            sizes[name] = run_collection(oracle, values, rng=5).bytes_per_report
        assert sizes["OUE"] <= sizes["OLH"]  # 16-bit rows are tiny here
        big = {}
        for name in ("HR", "OLH", "OUE"):
            oracle = make_oracle(name, 4096, 1.0)
            reports = oracle.privatize(np.zeros(4, dtype=int), rng=7)
            from repro.protocol import report_bytes

            big[name] = report_bytes(reports, 4)
        assert big["HR"] <= big["OLH"] < big["OUE"]


class TestLedgeredCollection:
    def test_repeated_queries_hit_the_cap(self, small_population):
        values, _ = small_population
        ledger = PrivacyLedger(epsilon_cap=2.0)
        oracle = make_oracle("OLH", 16, 0.9)
        for label in ("q1", "q2"):
            oracle.privatize(values, rng=11)
            ledger.spend(0.9, label=label)
        with pytest.raises(BudgetExceededError):
            ledger.spend(0.9, label="q3")
        assert ledger.remaining_epsilon < 0.9

    def test_parallel_user_split_stays_under_cap(self, small_population):
        """Splitting users lets many queries fit the same cap."""
        from repro.core.budget import compose_parallel

        values, _ = small_population
        gen = np.random.default_rng(13)
        groups = gen.integers(0, 4, size=values.shape[0])
        ledger = PrivacyLedger()
        for g in range(4):
            oracle = make_oracle("DE", 16, 1.5)
            oracle.privatize(values[groups == g], rng=17 + g)
            ledger.spend(1.5, label=f"group-{g}")
        eps_parallel, _ = compose_parallel(ledger.spends)
        assert eps_parallel == 1.5


class TestPostprocessingPipeline:
    def test_simplex_projection_improves_l1_on_skewed_data(self):
        values, _ = sample_zipf(64, 8_000, exponent=1.5, rng=19)
        counts = true_counts(values, 64)
        freqs = counts / counts.sum()
        oracle = make_oracle("OUE", 64, 0.5)
        reports = oracle.privatize(values, rng=23)
        raw = oracle.estimate_frequencies(reports)
        projected = oracle.estimate_frequencies(reports, postprocess="normsub")
        assert l1_error(freqs, projected) < l1_error(freqs, raw)


class TestMixedSystemsOnSharedWorkload:
    """One population observed through three deployed systems."""

    @pytest.fixture(scope="class")
    def workload(self):
        values, _ = sample_zipf(100, 60_000, exponent=1.4, rng=29)
        return values, true_counts(values, 100)

    def test_rappor_and_cms_agree_on_the_head(self, workload):
        values, counts = workload
        true_top3 = topk_set(counts, 3)

        from repro.systems.rappor import (
            RapporAggregator,
            RapporParams,
            privatize_population,
        )

        params = RapporParams()
        cohorts, reports = privatize_population(params, values, 31, rng=37)
        rappor_result = RapporAggregator(params, 31).decode(
            cohorts, reports, np.arange(100)
        )
        rappor_top = set(rappor_result.detected()[:3])

        from repro.systems.apple import CountMeanSketch

        cms = CountMeanSketch(100, 2.0, k=16, m=256, master_seed=41)
        cms_est = cms.estimate_counts(cms.privatize(values, rng=43))
        cms_top = topk_set(cms_est, 3)

        assert true_top3 & rappor_top
        assert true_top3 <= cms_top

    def test_blender_uses_central_and_local_together(self, workload):
        values, counts = workload
        from repro.hybrid import blender_estimate

        result = blender_estimate(values, 100, 1.0, optin_fraction=0.05, rng=47)
        truth = counts[result.head_list] / values.shape[0]
        assert np.mean((result.blended_frequencies - truth) ** 2) < np.mean(
            (result.client_frequencies - truth) ** 2
        ) * 1.1


class TestFailureInjection:
    def test_corrupted_reports_rejected_not_averaged(self, small_population):
        """A malicious report outside the protocol space must raise."""
        values, _ = small_population
        oracle = make_oracle("OLH", 16, 1.0)
        reports = oracle.privatize(values, rng=53)
        from repro.core.mechanism import HashedReports

        tampered = HashedReports(
            seeds=reports.seeds,
            values=reports.values.copy(),
        )
        tampered.values[0] = oracle.g + 5
        with pytest.raises(ValueError, match="refusing"):
            oracle.estimate_counts(tampered)

    def test_domain_mismatch_between_stages_raises(self, small_population):
        values, _ = small_population
        oracle_small = make_oracle("DE", 16, 1.0)
        reports = oracle_small.privatize(values, rng=59)
        oracle_big = make_oracle("DE", 8, 1.0)
        with pytest.raises(ValueError):
            oracle_big.support_counts(reports)

    def test_epsilon_zero_rejected_everywhere(self):
        for name in ORACLE_REGISTRY:
            with pytest.raises(ValueError):
                make_oracle(name, 16, 0.0)
