"""Tests for the multi-round adaptive refinement protocol."""

import numpy as np
import pytest

from repro.interactive import (
    AdaptiveResult,
    adaptive_frequency_estimation,
    one_shot_baseline,
)
from repro.workloads import sample_zipf, true_counts


@pytest.fixture(scope="module")
def population():
    values, _ = sample_zipf(512, 60_000, exponent=1.3, rng=91)
    return values, true_counts(values, 512)


class TestAdaptive:
    def test_result_structure(self, population):
        values, _ = population
        result = adaptive_frequency_estimation(values, 512, 2.0, rng=3)
        assert isinstance(result, AdaptiveResult)
        assert result.estimated_counts.shape == (512,)
        assert result.head.shape == (8,)
        assert len(result.ledger) == 2

    def test_head_contains_true_top(self, population):
        values, counts = population
        result = adaptive_frequency_estimation(
            values, 512, 2.0, head_size=16, rng=5
        )
        true_top4 = set(int(v) for v in np.argsort(-counts)[:4])
        assert true_top4 <= set(int(v) for v in result.head)

    def test_estimates_unbiased_on_head(self, population):
        values, counts = population
        result = adaptive_frequency_estimation(values, 512, 2.0, rng=7)
        top = np.argsort(-counts)[:4]
        for v in top:
            assert abs(result.estimated_counts[v] - counts[v]) < 0.3 * counts[v] + 2000

    def test_beats_one_shot_above_crossover(self, population):
        """At ε=2 with a small head, two rounds beat one (averaged)."""
        values, counts = population
        top = np.argsort(-counts)[:4]
        adaptive_mse, oneshot_mse = [], []
        for rep in range(5):
            res = adaptive_frequency_estimation(
                values, 512, 2.0, head_size=8, rng=100 + rep
            )
            base = one_shot_baseline(values, 512, 2.0, rng=200 + rep)
            adaptive_mse.append(np.mean((res.estimated_counts[top] - counts[top]) ** 2))
            oneshot_mse.append(np.mean((base[top] - counts[top]) ** 2))
        assert np.mean(adaptive_mse) < np.mean(oneshot_mse)

    def test_total_epsilon_is_parallel(self, population):
        """Disjoint user groups: per-user cost is ε despite two rounds."""
        from repro.core.budget import compose_parallel

        values, _ = population
        result = adaptive_frequency_estimation(values, 512, 1.5, rng=9)
        eps_parallel, _ = compose_parallel(result.ledger.spends)
        assert eps_parallel == 1.5

    def test_parameter_validation(self, population):
        values, _ = population
        with pytest.raises(ValueError, match="head_size"):
            adaptive_frequency_estimation(values, 512, 1.0, head_size=512)
        with pytest.raises(ValueError):
            adaptive_frequency_estimation(
                values, 512, 1.0, round1_fraction=1.0
            )

    def test_rejects_out_of_domain(self):
        with pytest.raises(ValueError):
            adaptive_frequency_estimation(np.asarray([512]), 512, 1.0)


class TestOneShot:
    def test_unbiased(self, population):
        values, counts = population
        est = one_shot_baseline(values, 512, 1.0, rng=11)
        assert est.shape == (512,)
        # total mass is preserved within 6 sigma of the summed noise
        from repro.core import make_oracle

        sd_total = make_oracle("OLH", 512, 1.0).count_stddev(
            values.shape[0]
        ) * np.sqrt(512)
        assert abs(est.sum() - values.shape[0]) < 6 * sd_total
