"""Tests for subset utilities and the three marginal-release strategies."""

import numpy as np
import pytest

from repro.marginals import (
    DirectMarginals,
    FourierMarginals,
    FullMaterialization,
    all_kway_masks,
    masks_up_to_weight,
    parity_characters,
    project_to_mask,
    submasks,
    true_marginal,
)
from repro.workloads import correlated_binary, independent_binary


class TestSubsets:
    def test_all_kway_count(self):
        assert len(all_kway_masks(6, 2)) == 15
        assert len(all_kway_masks(5, 5)) == 1

    def test_all_masks_have_weight_k(self):
        for mask in all_kway_masks(8, 3):
            assert bin(mask).count("1") == 3

    def test_k_exceeds_d(self):
        with pytest.raises(ValueError):
            all_kway_masks(3, 4)

    def test_masks_up_to_weight(self):
        masks = masks_up_to_weight(5, 2)
        assert len(masks) == 5 + 10
        assert 0 not in masks
        assert 0 in masks_up_to_weight(5, 2, include_empty=True)

    def test_submasks_complete(self):
        subs = submasks(0b101)
        assert sorted(subs) == [0b000, 0b001, 0b100, 0b101]

    def test_submasks_zero(self):
        assert submasks(0) == [0]

    def test_parity_characters(self):
        # χ_{101}(100) = (−1)^1 = −1; χ_{101}(101) = (−1)^2 = 1
        out = parity_characters(
            np.asarray([0b101, 0b101], dtype=np.uint64),
            np.asarray([0b100, 0b101], dtype=np.uint64),
        )
        assert list(out) == [-1.0, 1.0]

    def test_parity_orthogonality(self):
        """Σ_x χ_S(x) = 0 for S ≠ ∅ over the full cube."""
        xs = np.arange(16, dtype=np.uint64)
        for mask in masks_up_to_weight(4, 4):
            assert parity_characters(np.uint64(mask), xs).sum() == 0.0

    def test_project_to_mask(self):
        xs = np.asarray([0b1010, 0b0110])
        # select bits 1 and 3 → packed as (bit1, bit3) → values 0b11, 0b01
        out = project_to_mask(xs, 0b1010)
        assert list(out) == [0b11, 0b01]

    def test_true_marginal_sums_to_one(self):
        data = independent_binary(1000, 6, rng=3)
        marg = true_marginal(data, 0b011)
        assert marg.shape == (4,)
        assert np.isclose(marg.sum(), 1.0)

    def test_true_marginal_rejects_empty_mask(self):
        with pytest.raises(ValueError):
            true_marginal(np.asarray([0, 1]), 0)


@pytest.fixture(scope="module")
def binary_population():
    return correlated_binary(50_000, 6, rng=11)


ALL_RELEASES = [FullMaterialization, DirectMarginals, FourierMarginals]


class TestReleases:
    @pytest.mark.parametrize("cls", ALL_RELEASES)
    def test_marginals_sum_to_one(self, cls, binary_population):
        rel = cls(6, 2, 1.0).fit(binary_population, rng=3)
        for mask in all_kway_masks(6, 2)[:5]:
            marg = rel.marginal(mask)
            assert np.isclose(marg.sum(), 1.0)
            assert np.all(marg >= -1e-12)

    @pytest.mark.parametrize("cls", ALL_RELEASES)
    def test_accuracy_reasonable(self, cls, binary_population):
        rel = cls(6, 2, 2.0).fit(binary_population, rng=5)
        errs = [
            np.abs(rel.marginal(m) - true_marginal(binary_population, m)).sum()
            for m in all_kway_masks(6, 2)
        ]
        assert float(np.mean(errs)) < 0.25, cls.__name__

    @pytest.mark.parametrize("cls", ALL_RELEASES)
    def test_requires_fit(self, cls):
        rel = cls(6, 2, 1.0)
        with pytest.raises(RuntimeError, match="fit"):
            rel.marginal(0b11)

    @pytest.mark.parametrize("cls", ALL_RELEASES)
    def test_mask_weight_validation(self, cls, binary_population):
        rel = cls(6, 2, 1.0).fit(binary_population, rng=7)
        with pytest.raises(ValueError, match="selects 3"):
            rel.marginal(0b111)

    @pytest.mark.parametrize("cls", ALL_RELEASES)
    def test_mask_range_validation(self, cls, binary_population):
        rel = cls(6, 2, 1.0).fit(binary_population, rng=7)
        with pytest.raises(ValueError):
            rel.marginal(0)
        with pytest.raises(ValueError):
            rel.marginal(1 << 6)

    def test_k_exceeding_d_rejected(self):
        with pytest.raises(ValueError):
            FourierMarginals(4, 5, 1.0)

    def test_data_validation(self):
        rel = FourierMarginals(4, 2, 1.0)
        with pytest.raises(ValueError):
            rel.fit(np.asarray([16]), rng=1)  # 2^4 = 16 out of range

    def test_fourier_beats_fullmat_on_low_order(self, binary_population):
        """The paper's headline: Fourier wins for small k."""
        errs = {}
        for cls in (FourierMarginals, FullMaterialization):
            rel = cls(6, 2, 1.0).fit(binary_population, rng=13)
            errs[cls.__name__] = np.mean(
                [
                    np.abs(
                        rel.marginal(m) - true_marginal(binary_population, m)
                    ).sum()
                    for m in all_kway_masks(6, 2)
                ]
            )
        assert errs["FourierMarginals"] < errs["FullMaterialization"]

    def test_fourier_coefficients_clipped(self, binary_population):
        rel = FourierMarginals(6, 2, 1.0).fit(binary_population, rng=17)
        assert all(-1.0 <= c <= 1.0 for c in rel.coefficients.values())
        assert rel.coefficients[0] == 1.0

    def test_fourier_lower_order_marginal_from_same_fit(self, binary_population):
        """1-way marginals are answerable from a k=2 fit (submask sums)."""
        rel = FourierMarginals(6, 2, 1.0).fit(binary_population, rng=19)
        one_way = rel.marginal(0b1)
        truth = true_marginal(binary_population, 0b1)
        assert np.abs(one_way - truth).sum() < 0.1

    def test_direct_answers_lower_order_via_containing_table(
        self, binary_population
    ):
        rel = DirectMarginals(6, 2, 1.0).fit(binary_population, rng=23)
        one_way = rel.marginal(0b10)
        truth = true_marginal(binary_population, 0b10)
        assert np.abs(one_way - truth).sum() < 0.15
