"""The sharded collection pipeline and report-size accounting.

`run_sharded_collection` is the deployment-shaped entry point: chunked
privatization, per-shard accumulators, one merge into a *fresh*
accumulator, one finalize.  These tests pin its determinism (worker
schedule and executor backend must not matter), the non-destructive
merge (shard accumulators stay untouched — the PR 2 aliasing
regression), its bounded-memory chunking, its bookkeeping, and the
`report_bytes` classification fix.
"""

import numpy as np
import pytest

from repro.core import (
    ORACLE_REGISTRY,
    DirectEncoding,
    OptimalLocalHashing,
    OptimalUnaryEncoding,
    make_oracle,
)
from repro.protocol import report_bytes, run_collection, run_sharded_collection


class TestShardedCollection:
    def test_matches_population_statistics(self):
        oracle = DirectEncoding(16, 2.0)
        values = np.arange(16).repeat(500)
        stats = run_sharded_collection(
            oracle, values, num_shards=4, chunk_size=1000, rng=1
        )
        assert stats.num_users == 8000
        assert stats.estimated_counts.shape == (16,)
        sd = oracle.count_stddev(8000, f=1 / 16)
        assert np.all(np.abs(stats.estimated_counts - 500) < 6 * sd)

    def test_worker_schedule_does_not_change_results(self):
        oracle = OptimalLocalHashing(32, 1.5)
        values = np.random.default_rng(2).integers(0, 32, size=6000)
        seq = run_sharded_collection(
            oracle, values, num_shards=5, chunk_size=700, workers=None, rng=3
        )
        pooled = run_sharded_collection(
            oracle, values, num_shards=5, chunk_size=700, workers=4, rng=3
        )
        assert np.array_equal(seq.estimated_counts, pooled.estimated_counts)

    def test_chunking_is_bounded_and_counted(self):
        oracle = DirectEncoding(8, 1.0)
        values = np.arange(8).repeat(400)  # 3200 users
        stats = run_sharded_collection(
            oracle, values, num_shards=2, chunk_size=300, rng=4
        )
        assert stats.num_shards == 2
        assert len(stats.shards) == 2
        for shard in stats.shards:
            assert shard.num_users == 1600
            # ceil(1600 / 300) chunks — the memory bound really applies
            assert shard.num_chunks == 6
            assert shard.encode_seconds >= 0.0
            assert shard.decode_seconds >= 0.0
        assert stats.encode_seconds == sum(
            s.encode_seconds for s in stats.shards
        )
        assert stats.total_bytes == 8.0 * 3200  # int64 DE reports

    def test_single_shard_single_chunk_matches_run_collection_shape(self):
        oracle = OptimalUnaryEncoding(8, 1.0)
        values = np.arange(8).repeat(100)
        one = run_collection(oracle, values, rng=5)
        sharded = run_sharded_collection(
            oracle, values, num_shards=1, chunk_size=10_000, rng=5
        )
        assert one.estimated_counts.shape == sharded.estimated_counts.shape
        assert sharded.shards[0].bytes_per_report == one.bytes_per_report
        assert sharded.users_per_second > 0

    def test_uneven_shards_cover_everyone(self):
        oracle = DirectEncoding(4, 1.0)
        values = np.arange(4).repeat(25)  # 100 users, 3 shards → 34/33/33
        stats = run_sharded_collection(
            oracle, values, num_shards=3, chunk_size=10, rng=6
        )
        assert [s.num_users for s in stats.shards] == [34, 33, 33]
        assert sum(s.num_users for s in stats.shards) == 100

    def test_validation(self):
        oracle = DirectEncoding(4, 1.0)
        values = np.arange(4).repeat(5)
        with pytest.raises(ValueError):
            run_sharded_collection(oracle, values, num_shards=0)
        with pytest.raises(ValueError):
            run_sharded_collection(oracle, values, chunk_size=0)
        with pytest.raises(ValueError):
            run_sharded_collection(oracle, values, num_shards=21)
        with pytest.raises(ValueError):
            run_sharded_collection(oracle, np.zeros((2, 2)), num_shards=1)
        with pytest.raises(ValueError):
            run_sharded_collection(oracle, values, backend="gpu")

    @pytest.mark.parametrize("name", ["DE", "OUE", "SHE", "OLH", "HR"])
    def test_every_core_oracle_runs_through_the_pipeline(self, name):
        oracle = make_oracle(name, 8, 1.0)
        values = np.arange(8).repeat(50)
        stats = run_sharded_collection(
            oracle, values, num_shards=3, chunk_size=64, workers=2, rng=7
        )
        assert stats.estimated_counts.shape == (8,)
        assert abs(stats.estimated_counts.sum() - 400) < 400


class _TrackingOracle(DirectEncoding):
    """DE that records every accumulator it hands out."""

    def __init__(self, domain_size, epsilon):
        super().__init__(domain_size, epsilon)
        self.created = []

    def accumulator(self, candidates=None):
        acc = super().accumulator(candidates)
        self.created.append(acc)
        return acc


class TestNonDestructiveMerge:
    def test_regression_shard_accumulators_are_not_mutated_by_the_merge(self):
        # The PR 1 pipeline merged every shard into shard 0's accumulator
        # in place, silently inflating its state to the whole population.
        # The merge must go into a fresh accumulator instead: every
        # shard's accumulator keeps exactly its own shard's reports.
        oracle = _TrackingOracle(8, 1.5)
        values = np.arange(8).repeat(30)  # 240 users, 3 shards of 80
        stats = run_sharded_collection(
            oracle, values, num_shards=3, chunk_size=50, rng=11
        )
        # 3 shard accumulators + 1 fresh merge target.
        assert len(oracle.created) == 4
        shard_accs = oracle.created[:3]
        assert [acc.n_absorbed for acc in shard_accs] == [80, 80, 80]
        # The shard accumulators still merge to the published estimate —
        # they were read, not consumed.
        remerged = oracle.accumulator()
        for acc in shard_accs:
            remerged.merge(acc)
        assert np.array_equal(remerged.finalize(), stats.estimated_counts)

    def test_single_shard_stats_are_not_the_whole_population_twice(self):
        # With one shard the old code finalized the shard accumulator
        # directly; the fresh-merge path must give the same numbers.
        oracle = _TrackingOracle(4, 1.0)
        values = np.arange(4).repeat(25)
        stats = run_sharded_collection(
            oracle, values, num_shards=1, chunk_size=40, rng=3
        )
        assert oracle.created[0].n_absorbed == 100
        assert np.array_equal(
            oracle.created[0].finalize(), stats.estimated_counts
        )


class TestExecutorBackends:
    @pytest.mark.parametrize("name", sorted(ORACLE_REGISTRY))
    def test_process_backend_matches_serial_for_every_oracle(self, name):
        oracle = make_oracle(name, 10, 1.5)
        values = np.random.default_rng(31).integers(0, 10, size=1200)
        serial = run_sharded_collection(
            oracle, values, num_shards=3, chunk_size=256, backend="serial", rng=13
        )
        process = run_sharded_collection(
            oracle, values, num_shards=3, chunk_size=256, backend="process",
            workers=2, rng=13,
        )
        assert serial.backend == "serial"
        assert process.backend == "process"
        # Bitwise for every oracle — SHE's exact summation closed the
        # old ~1e-9 shard-order caveat.
        assert np.array_equal(process.estimated_counts, serial.estimated_counts)

    def test_thread_backend_matches_serial(self):
        oracle = OptimalLocalHashing(16, 1.2)
        values = np.random.default_rng(5).integers(0, 16, size=2000)
        serial = run_sharded_collection(
            oracle, values, num_shards=4, chunk_size=300, backend="serial", rng=8
        )
        threaded = run_sharded_collection(
            oracle, values, num_shards=4, chunk_size=300, backend="thread",
            workers=4, rng=8,
        )
        assert np.array_equal(
            threaded.estimated_counts, serial.estimated_counts
        )

    def test_backend_none_keeps_historical_workers_semantics(self):
        oracle = DirectEncoding(8, 1.0)
        values = np.arange(8).repeat(20)
        assert run_sharded_collection(oracle, values, rng=1).backend == "serial"
        assert (
            run_sharded_collection(oracle, values, workers=1, rng=1).backend
            == "serial"
        )
        assert (
            run_sharded_collection(oracle, values, workers=3, rng=1).backend
            == "thread"
        )

    def test_process_backend_reports_per_shard_stats(self):
        oracle = DirectEncoding(8, 1.0)
        values = np.arange(8).repeat(30)  # 240 users
        stats = run_sharded_collection(
            oracle, values, num_shards=2, chunk_size=50, backend="process",
            workers=2, rng=4,
        )
        assert [s.num_users for s in stats.shards] == [120, 120]
        assert [s.num_chunks for s in stats.shards] == [3, 3]
        assert stats.total_bytes == 8.0 * 240  # int64 DE reports


class TestReportBytes:
    def test_uint8_bit_matrix_counts_bits(self):
        bits = (np.random.default_rng(1).random((50, 64)) < 0.5).astype(np.uint8)
        assert report_bytes(bits, 50) == 8.0  # 64 bits = 8 bytes

    def test_all_zero_uint8_matrix_still_counts_bits(self):
        assert report_bytes(np.zeros((10, 16), dtype=np.uint8), 10) == 2.0

    def test_regression_zero_one_int64_matrix_is_not_a_bit_matrix(self):
        # int64 payloads are transmitted at full width even when the
        # sampled values happen to all be 0/1 — dtype decides, and the
        # check must not materialize a unique pass over the batch.
        arr = np.zeros((100, 8), dtype=np.int64)
        arr[0, 0] = 1
        assert report_bytes(arr, 100) == 64.0
        assert report_bytes(np.zeros((100, 8), dtype=np.int64), 100) == 64.0

    def test_uint8_with_larger_values_counts_full_bytes(self):
        arr = np.full((10, 4), 3, dtype=np.uint8)
        assert report_bytes(arr, 10) == 4.0

    def test_float_matrix_counts_full_width(self):
        assert report_bytes(np.zeros((5, 4), dtype=np.float64), 5) == 32.0
