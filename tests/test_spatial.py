"""Tests for spatial aggregation: grids, range queries, personalization."""

import numpy as np
import pytest

from repro.spatial import (
    AdaptiveGrid,
    PersonalizedSpatial,
    PrivacySpec,
    Rectangle,
    UniformGrid,
)
from repro.workloads import spatial_mixture, true_cell_counts


@pytest.fixture(scope="module")
def point_cloud():
    points, hotspots = spatial_mixture(50_000, rng=31)
    return points, hotspots


def true_range_count(points: np.ndarray, rect: Rectangle) -> float:
    inside = (
        (points[:, 0] >= rect.x_low)
        & (points[:, 0] < rect.x_high)
        & (points[:, 1] >= rect.y_low)
        & (points[:, 1] < rect.y_high)
    )
    return float(inside.sum())


class TestRectangle:
    def test_area(self):
        assert np.isclose(Rectangle(0.1, 0.2, 0.3, 0.6).area, 0.08)

    def test_rejects_inverted(self):
        with pytest.raises(ValueError, match="positive area"):
            Rectangle(0.5, 0.5, 0.4, 0.6)

    def test_rejects_out_of_square(self):
        with pytest.raises(ValueError):
            Rectangle(-0.1, 0.0, 0.5, 0.5)


class TestUniformGrid:
    def test_cell_of_corners(self):
        grid = UniformGrid(4, 1.0)
        cells = grid.cell_of(np.asarray([[0.0, 0.0], [0.99, 0.99], [1.0, 1.0]]))
        assert list(cells) == [0, 15, 15]

    def test_cell_of_rejects_outside(self):
        grid = UniformGrid(4, 1.0)
        with pytest.raises(ValueError):
            grid.cell_of(np.asarray([[1.2, 0.5]]))

    def test_fit_estimates_cells(self, point_cloud):
        points, _ = point_cloud
        grid = UniformGrid(8, 1.0).fit(points, rng=3)
        truth = true_cell_counts(points, 8)
        sd = grid._oracle.count_stddev(points.shape[0], f=float(truth.max()) / points.shape[0])
        assert np.all(np.abs(grid.estimated_counts - truth) < 6 * sd)

    def test_requires_fit(self):
        grid = UniformGrid(4, 1.0)
        with pytest.raises(RuntimeError):
            _ = grid.estimated_counts

    def test_range_query_tracks_truth(self, point_cloud):
        points, _ = point_cloud
        grid = UniformGrid(16, 2.0).fit(points, rng=5)
        rect = Rectangle(0.15, 0.6, 0.4, 0.85)
        truth = true_range_count(points, rect)
        est = grid.range_query(rect)
        assert abs(est - truth) < 0.25 * truth + 2000

    def test_full_square_query_near_n(self, point_cloud):
        points, _ = point_cloud
        grid = UniformGrid(8, 2.0).fit(points, rng=7)
        est = grid.range_query(Rectangle(0.0, 0.0, 1.0, 1.0))
        assert abs(est - points.shape[0]) < 0.1 * points.shape[0]

    def test_hotspots_found_at_planted_centers(self, point_cloud):
        points, hotspots = point_cloud
        grid = UniformGrid(8, 2.0).fit(points, rng=9)
        found = grid.hotspots(threshold_sds=3.0)
        for h in hotspots:
            xi = min(int(h.x * 8), 7)
            yi = min(int(h.y * 8), 7)
            assert yi * 8 + xi in found, f"hotspot at ({h.x},{h.y}) missed"

    def test_hotspots_threshold_validation(self, point_cloud):
        points, _ = point_cloud
        grid = UniformGrid(8, 2.0).fit(points, rng=11)
        with pytest.raises(ValueError):
            grid.hotspots(threshold_sds=0.0)

    def test_uniform_data_has_no_hotspots(self):
        gen = np.random.default_rng(13)
        points = gen.random((30_000, 2))
        grid = UniformGrid(8, 1.0).fit(points, rng=15)
        assert len(grid.hotspots(threshold_sds=4.0)) <= 1


class TestAdaptiveGrid:
    def test_dense_cells_split_finer(self, point_cloud):
        points, hotspots = point_cloud
        ag = AdaptiveGrid(6, 2.0).fit(points, rng=17)
        splits = ag._splits.reshape(6, 6)
        h = hotspots[0]
        hot_split = splits[min(int(h.y * 6), 5), min(int(h.x * 6), 5)]
        corner_split = splits[0, 5]  # empty corner
        assert hot_split > corner_split

    def test_range_query_reasonable(self, point_cloud):
        points, _ = point_cloud
        ag = AdaptiveGrid(6, 2.0).fit(points, rng=19)
        rect = Rectangle(0.15, 0.6, 0.4, 0.85)
        truth = true_range_count(points, rect)
        assert abs(ag.range_query(rect) - truth) < 0.3 * truth + 2000

    def test_requires_fit(self):
        ag = AdaptiveGrid(4, 1.0)
        with pytest.raises(RuntimeError):
            ag.range_query(Rectangle(0, 0, 1, 1))

    def test_needs_two_users(self):
        ag = AdaptiveGrid(4, 1.0)
        with pytest.raises(ValueError):
            ag.fit(np.asarray([[0.5, 0.5]]), rng=1)


class TestPersonalized:
    def test_spec_properties(self):
        spec = PrivacySpec(3, 1.0)
        assert spec.grid_size == 8
        assert spec.num_cells == 64

    def test_blend_beats_coarsest_stratum_alone(self, point_cloud):
        points, _ = point_cloud
        gen = np.random.default_rng(21)
        specs = [PrivacySpec(2, 0.5), PrivacySpec(4, 2.0)]
        assign = gen.integers(0, 2, size=points.shape[0])
        ps = PersonalizedSpatial(4).fit(points, specs, assign, rng=23)
        truth = true_cell_counts(points, 16)
        rmse = float(np.sqrt(np.mean((ps.estimated_counts - truth) ** 2)))
        # coarse-only baseline: uniform spread of level-2 cells
        coarse_only = PersonalizedSpatial(4).fit(
            points, [PrivacySpec(2, 0.5)], np.zeros(points.shape[0], dtype=int),
            rng=25,
        )
        rmse_coarse = float(
            np.sqrt(np.mean((coarse_only.estimated_counts - truth) ** 2))
        )
        assert rmse < rmse_coarse

    def test_spec_finer_than_target_rejected(self, point_cloud):
        points, _ = point_cloud
        ps = PersonalizedSpatial(2)
        with pytest.raises(ValueError, match="exceeds target"):
            ps.fit(
                points,
                [PrivacySpec(3, 1.0)],
                np.zeros(points.shape[0], dtype=int),
                rng=1,
            )

    def test_assignment_validation(self, point_cloud):
        points, _ = point_cloud
        ps = PersonalizedSpatial(3)
        with pytest.raises(ValueError, match="out of range"):
            ps.fit(points, [PrivacySpec(2, 1.0)], np.ones(points.shape[0], dtype=int))

    def test_requires_fit(self):
        with pytest.raises(RuntimeError):
            _ = PersonalizedSpatial(3).estimated_counts
