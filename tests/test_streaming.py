"""Streaming/windowed collection: the evolving-data shape.

`StreamingCollector` snapshots a live accumulator, which is only sound
because finalize is pure and merge never mutates its argument.  These
tests pin the window algebra (tumbling + cumulative), the equality of
the final cumulative snapshot with the one-shot batch estimate, and the
snapshot's non-destructiveness (reading the stream must not disturb it).
"""

import math

import numpy as np
import pytest

from repro.core import ORACLE_REGISTRY, OptimalLocalHashing, make_oracle
from repro.core.budget import BudgetExceededError, PrivacyLedger
from repro.protocol import (
    StreamingCollector,
    WindowSpec,
    run_sharded_collection,
    stream_collection,
)
from repro.systems.microsoft import OneBitMean, RepeatedCollector
from repro.systems.rappor import RapporAggregator, RapporParams, privatize_population


class TestStreamingCollector:
    def test_snapshot_is_repeatable_and_non_destructive(self):
        oracle = OptimalLocalHashing(16, 1.5)
        gen = np.random.default_rng(1)
        chunk_a = oracle.privatize(gen.integers(0, 16, 500), rng=gen)
        chunk_b = oracle.privatize(gen.integers(0, 16, 500), rng=gen)
        col = StreamingCollector(oracle)
        col.absorb(chunk_a)
        s1 = col.snapshot()
        s2 = col.snapshot()
        assert np.array_equal(s1.cumulative_estimates, s2.cumulative_estimates)
        assert np.array_equal(s1.window_estimates, s2.window_estimates)
        # Reading did not disturb the stream: absorbing more afterwards
        # lands exactly where an unsnapshotted accumulator would.
        col.absorb(chunk_b)
        expected = oracle.accumulator().absorb(chunk_a).absorb(chunk_b).finalize()
        assert col.total_users == 1000
        assert np.array_equal(col.snapshot().cumulative_estimates, expected)

    def test_roll_closes_tumbling_windows(self):
        oracle = make_oracle("DE", 8, 1.0)
        col = StreamingCollector(oracle)
        gen = np.random.default_rng(3)
        first = oracle.privatize(gen.integers(0, 8, 300), rng=gen)
        second = oracle.privatize(gen.integers(0, 8, 200), rng=gen)
        snap0 = col.absorb(first).roll()
        assert snap0.window_index == 0
        assert snap0.window_users == 300
        assert col.window_index == 1
        assert col.window_users == 0
        snap1 = col.absorb(second).roll()
        assert snap1.window_index == 1
        assert snap1.window_users == 200
        assert snap1.total_users == 500
        # Tumbling estimates cover only their window's reports.
        assert np.array_equal(
            snap1.window_estimates, oracle.estimate_counts(second)
        )

    def test_empty_window_snapshot(self):
        oracle = make_oracle("OUE", 8, 1.0)
        col = StreamingCollector(oracle)
        col.absorb(oracle.privatize(np.arange(8).repeat(10), rng=1)).roll()
        snap = col.snapshot()  # nothing absorbed since the roll
        assert snap.window_users == 0
        assert snap.window_estimates is None
        assert snap.total_users == 80

    def test_empty_stream_snapshot_is_graceful(self):
        # Polling a just-started stream must not crash, even for
        # mechanisms whose finalize rejects n=0 (1BitMean).
        for factory in (lambda: make_oracle("DE", 8, 1.0),
                        lambda: OneBitMean(100.0, 1.0)):
            snap = StreamingCollector(factory()).snapshot()
            assert snap.total_users == 0
            assert snap.window_estimates is None
            assert snap.cumulative_estimates is None

    @pytest.mark.parametrize("name", sorted(ORACLE_REGISTRY))
    def test_final_cumulative_snapshot_equals_one_shot_batch(
        self, name, slice_reports
    ):
        oracle = make_oracle(name, 8, 1.2)
        values = np.random.default_rng(7).integers(0, 8, size=900)
        reports = oracle.privatize(values, rng=8)
        whole = oracle.estimate_counts(reports)
        col = StreamingCollector(oracle)
        order = np.arange(900)
        for start in range(0, 900, 225):
            mask = (order >= start) & (order < start + 225)
            col.absorb(slice_reports(reports, mask))
            col.roll()
        final = col.snapshot()
        assert final.total_users == 900
        # Bitwise for every oracle — SHE's accumulator sums exactly.
        assert np.array_equal(final.cumulative_estimates, whole)

    def test_works_with_non_frequency_mechanisms(self):
        # Anything with an accumulator() streams — Microsoft's 1BitMean
        # is the evolving-telemetry case in the flesh.
        mech = OneBitMean(100.0, 1.0)
        xs = np.random.default_rng(9).uniform(0, 100, size=600)
        bits = mech.privatize(xs, rng=10)
        col = StreamingCollector(mech)
        col.absorb(bits[:300]).roll()
        col.absorb(bits[300:])
        final = col.snapshot()
        assert final.total_users == 600
        assert float(final.cumulative_estimates[0]) == mech.estimate_mean(bits)


class TestStreamCollectionDriver:
    def test_window_schedule_and_coverage(self):
        oracle = make_oracle("OLH", 16, 1.5)
        values = np.random.default_rng(11).integers(0, 16, size=2600)
        snaps = stream_collection(
            oracle, values, window_size=1000, chunk_size=300, rng=12
        )
        assert [s.window_users for s in snaps] == [1000, 1000, 600]
        assert [s.window_index for s in snaps] == [0, 1, 2]
        assert snaps[-1].total_users == 2600
        assert all(s.snapshot_seconds >= 0.0 for s in snaps)

    def test_estimates_land_near_truth(self):
        oracle = make_oracle("DE", 8, 2.0)
        values = np.arange(8).repeat(500)
        snaps = stream_collection(
            oracle, values, window_size=2000, chunk_size=512, rng=13
        )
        sd = oracle.count_stddev(4000, f=1 / 8)
        assert np.all(
            np.abs(snaps[-1].cumulative_estimates - 500) < 6 * sd
        )

    def test_validation(self):
        oracle = make_oracle("DE", 4, 1.0)
        with pytest.raises(ValueError):
            stream_collection(oracle, np.arange(4), window_size=0)
        with pytest.raises(ValueError):
            stream_collection(oracle, np.zeros((2, 2)), window_size=2)
        with pytest.raises(ValueError):
            stream_collection(oracle, np.arange(4))  # no window at all
        with pytest.raises(ValueError):
            stream_collection(
                oracle,
                np.arange(4),
                window_size=2,
                window=WindowSpec.tumbling(2),  # both is ambiguous
            )

    def test_result_is_sequence_with_ledger(self):
        oracle = make_oracle("DE", 8, 1.0)
        result = stream_collection(
            oracle, np.arange(8).repeat(50), window_size=100, rng=5
        )
        assert len(result) == 4
        assert result[-1].total_users == 400
        assert [s.window_index for s in result] == [0, 1, 2, 3]
        assert isinstance(result.ledger, PrivacyLedger)
        assert len(result.ledger) == 4  # one fresh release per window


class TestWindowSpec:
    def test_kind_validation(self):
        with pytest.raises(ValueError):
            WindowSpec("hopping", 10)

    def test_sliding_needs_size_and_stride(self):
        with pytest.raises(ValueError):
            WindowSpec("sliding", 10)
        with pytest.raises(ValueError):
            WindowSpec.sliding(10, 3)  # stride must tile the window

    def test_gapped_sliding_is_supported(self):
        spec = WindowSpec.sliding(10, 40)  # sampling/decimated windows
        assert spec.is_gapped
        assert spec.num_panes == 1
        assert spec.pane_size == 40

    def test_stride_rejected_off_sliding(self):
        with pytest.raises(ValueError):
            WindowSpec("tumbling", 10, 5)

    def test_geometry(self):
        assert WindowSpec.tumbling(100).num_panes == 1
        assert WindowSpec.tumbling(100).pane_size == 100
        assert WindowSpec.sliding(300, 100).num_panes == 3
        assert WindowSpec.sliding(300, 100).pane_size == 100
        assert WindowSpec.cumulative(50).num_panes == 1


class TestSlidingWindows:
    def test_driver_schedule(self):
        oracle = make_oracle("OLH", 16, 1.5)
        values = np.random.default_rng(21).integers(0, 16, size=1100)
        result = stream_collection(
            oracle,
            values,
            window=WindowSpec.sliding(400, 200),
            chunk_size=128,
            rng=22,
        )
        # One snapshot per stride; windows grow to full size then slide.
        assert [s.window_users for s in result] == [200, 400, 400, 400, 400, 300]
        assert all(s.pane_count <= 2 for s in result)
        assert result[-1].total_users == 1100

    def test_cumulative_window_is_stream_so_far(self):
        oracle = make_oracle("DE", 8, 1.0)
        result = stream_collection(
            oracle,
            np.arange(8).repeat(40),
            window=WindowSpec.cumulative(80),
            rng=23,
        )
        for snap in result:
            assert snap.window_users == snap.total_users
            assert np.array_equal(snap.window_estimates, snap.cumulative_estimates)


class TestPrivacyAccounting:
    def test_same_users_fresh_composes_sequentially(self):
        oracle = make_oracle("OLH", 8, 1.25)
        result = stream_collection(
            oracle,
            np.random.default_rng(31).integers(0, 8, 600),
            window_size=200,
            rng=32,
            user_model="same_users",
        )
        assert math.isclose(result.ledger.total_epsilon, 3 * 1.25)
        # The snapshot trajectory exposes the running spend.
        assert [round(s.total_epsilon, 6) for s in result] == [1.25, 2.5, 3.75]

    def test_disjoint_users_compose_in_parallel(self):
        oracle = make_oracle("OLH", 8, 1.25)
        result = stream_collection(
            oracle,
            np.random.default_rng(33).integers(0, 8, 600),
            window_size=200,
            rng=34,
            user_model="disjoint_users",
        )
        assert math.isclose(result.ledger.total_epsilon, 1.25)
        assert len(result.ledger) == 3  # audit trail keeps every window

    def test_memoized_release_charged_once_per_stream(self):
        # RAPPOR declares a one-time ε∞ release: streaming any number of
        # windows over the same population charges it exactly once.
        params = RapporParams(num_bits=16, num_hashes=2, num_cohorts=2)
        aggregator = RapporAggregator(params, 5)
        cohorts, bits = privatize_population(
            params, np.random.default_rng(35).integers(0, 10, 300), 5, rng=36
        )
        col = StreamingCollector(aggregator)
        for w in range(3):
            sel = slice(w * 100, (w + 1) * 100)
            col.absorb((cohorts[sel], bits[sel]))
            col.roll()
        assert len(col.ledger) == 1
        assert math.isclose(col.ledger.total_epsilon, params.epsilon_permanent)

    def test_capped_ledger_raises_mid_stream(self):
        # Fresh-mode repeated windows over the same users: the third
        # window would break the cap and must be refused before any of
        # its reports are absorbed.
        oracle = make_oracle("OLH", 8, 1.0)
        ledger = PrivacyLedger(epsilon_cap=2.5)
        with pytest.raises(BudgetExceededError):
            stream_collection(
                oracle,
                np.random.default_rng(37).integers(0, 8, 800),
                window_size=200,
                rng=38,
                ledger=ledger,
            )
        # Two windows fit; the stream died at the third.
        assert len(ledger) == 2
        assert math.isclose(ledger.total_epsilon, 2.0)

    def test_repeated_collector_fresh_mode_hits_cap(self):
        collector = RepeatedCollector(100.0, epsilon=1.0, mode="fresh")
        traj = np.random.default_rng(39).uniform(0, 100, size=(50, 5))
        ledger = PrivacyLedger(epsilon_cap=3.0)
        with pytest.raises(BudgetExceededError):
            collector.run(traj, rng=40, ledger=ledger)
        assert len(ledger) == 3  # rounds 0-2 collected, round 3 refused

    def test_repeated_collector_memoized_fits_any_horizon(self):
        collector = RepeatedCollector(100.0, epsilon=1.0, mode="memoized_op")
        traj = np.random.default_rng(41).uniform(0, 100, size=(50, 12))
        ledger = PrivacyLedger(epsilon_cap=1.0)
        run = collector.run(traj, rng=42, ledger=ledger)
        assert run.ledger is ledger
        assert math.isclose(run.total_epsilon, 1.0)
        assert len(run.rounds) == 12

    def test_sharded_collection_returns_populated_ledger(self):
        oracle = make_oracle("OUE", 8, 1.5)
        stats = run_sharded_collection(
            oracle,
            np.random.default_rng(43).integers(0, 8, 400),
            num_shards=2,
            rng=44,
        )
        assert stats.ledger is not None
        assert math.isclose(stats.ledger.total_epsilon, 1.5)

    def test_onebit_stream_is_accounted(self):
        mech = OneBitMean(100.0, 1.0)
        bits = mech.privatize(
            np.random.default_rng(45).uniform(0, 100, 300), rng=46
        )
        col = StreamingCollector(mech)
        col.absorb(bits[:150]).roll()
        col.absorb(bits[150:]).roll()
        assert math.isclose(col.ledger.total_epsilon, 2.0)

    def test_user_model_validation(self):
        with pytest.raises(ValueError):
            StreamingCollector(make_oracle("DE", 4, 1.0), user_model="strangers")

    def test_independent_streams_sharing_a_ledger_each_pay(self):
        # One-time charges are scoped per release: two collectors (two
        # independent memoized releases) on one ledger must charge twice.
        params = RapporParams(num_bits=16, num_hashes=2, num_cohorts=2)
        aggregator = RapporAggregator(params, 5)
        cohorts, bits = privatize_population(
            params, np.random.default_rng(47).integers(0, 10, 200), 5, rng=48
        )
        shared = PrivacyLedger()
        for _ in range(2):
            col = StreamingCollector(aggregator, ledger=shared)
            col.absorb((cohorts, bits)).roll()
            col.absorb((cohorts, bits)).roll()  # replay within stream: free
        assert len(shared) == 2
        assert math.isclose(shared.total_epsilon, 2 * params.epsilon_permanent)

    def test_repeated_memoized_runs_sharing_a_ledger_each_pay(self):
        # Each run draws fresh memo bits — an independent release; a
        # shared capped ledger must refuse the second, not wave it
        # through as a replay.
        collector = RepeatedCollector(100.0, epsilon=1.0, mode="memoized")
        traj = np.random.default_rng(49).uniform(0, 100, size=(40, 3))
        shared = PrivacyLedger(epsilon_cap=1.5)
        collector.run(traj, rng=50, ledger=shared)
        with pytest.raises(BudgetExceededError):
            collector.run(traj, rng=51, ledger=shared)
        assert math.isclose(shared.total_epsilon, 1.0)

    def test_repeated_sharded_collections_each_charge(self):
        # Every call privatizes fresh randomness: two collections on one
        # ledger are two releases even for a one-time-declaring oracle.
        from repro.core.budget import SpendDeclaration

        class _MemoizedOracle:
            def __init__(self):
                self._inner = make_oracle("DE", 8, 1.5)

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def privacy_spend(self):
                return SpendDeclaration(
                    epsilon=1.5, scope="one_time", mechanism="MemoDE"
                )

        oracle = _MemoizedOracle()
        values = np.random.default_rng(52).integers(0, 8, 60)
        shared = PrivacyLedger()
        for _ in range(2):
            run_sharded_collection(
                oracle, values, num_shards=2, chunk_size=30, rng=53, ledger=shared
            )
        assert len(shared) == 2
        assert math.isclose(shared.total_epsilon, 3.0)

    def test_rappor_clients_sharing_a_ledger_each_pay(self):
        from repro.systems.rappor.client import RapporClient

        params = RapporParams(num_bits=16, num_hashes=2, num_cohorts=2)
        shared = PrivacyLedger()
        for cohort in (0, 1):
            client = RapporClient(params, cohort, 9, rng=cohort, ledger=shared)
            client.report(3)
            client.report(3)  # same value, same device: memoized, free
        assert len(shared) == 2
        assert math.isclose(shared.total_epsilon, 2 * params.epsilon_permanent)


class TestGappedWindows:
    def test_driver_samples_each_period(self):
        oracle = make_oracle("OLH", 16, 1.5)
        values = np.random.default_rng(60).integers(0, 16, size=1000)
        result = stream_collection(
            oracle,
            values,
            window=WindowSpec.sliding(50, 200),  # sample 50 of every 200
            chunk_size=64,
            rng=61,
        )
        assert [s.window_users for s in result] == [50] * 5
        # The gap users still reach the cumulative view.
        assert result[-1].total_users == 1000
        assert result.absorbed_reports == 1000

    def test_gapped_cumulative_equals_batch(self):
        # Window/gap splitting must not change what was collected: the
        # final cumulative estimate equals the one-shot batch over the
        # same reports (same rng stream; chunk boundaries differ, which
        # the exact accumulator algebra makes invisible).
        oracle = make_oracle("DE", 8, 1.2)
        values = np.random.default_rng(62).integers(0, 8, size=600)
        result = stream_collection(
            oracle,
            values,
            window=WindowSpec.sliding(30, 120),
            chunk_size=45,  # straddles the window/gap boundary
            rng=63,
        )
        assert result[-1].total_users == 600
        assert [s.window_users for s in result] == [30] * 5

    def test_collector_enforces_gap_boundary(self):
        # A raw collector with a gapped spec refuses over-size windows
        # loudly — the window/gap split is part of the spec's contract,
        # not a driver nicety.
        oracle = make_oracle("DE", 8, 1.0)
        col = StreamingCollector(oracle, WindowSpec.sliding(4, 10))
        reports = oracle.privatize(np.arange(8).repeat(2), rng=90)
        with pytest.raises(ValueError, match="absorb_outside"):
            col.absorb(reports)  # 16 reports into a 4-report window
        col.absorb(reports[:4])
        col.absorb_outside(reports[4:])
        snap = col.roll()
        assert snap.window_users == 4
        assert snap.total_users == 16

    def test_gapped_window_charges_once_per_period(self):
        oracle = make_oracle("OLH", 8, 1.0)
        result = stream_collection(
            oracle,
            np.random.default_rng(64).integers(0, 8, 600),
            window=WindowSpec.sliding(100, 300),
            rng=65,
        )
        # Two periods: the gap reports ride on their period's charge.
        assert len(result.ledger) == 2
        assert math.isclose(result.ledger.total_epsilon, 2.0)


class TestPaneStores:
    def test_two_stack_and_ring_agree_bitwise(self, slice_reports):
        oracle = make_oracle("OLH", 16, 1.5)
        n = 1200
        reports = oracle.privatize(
            np.random.default_rng(70).integers(0, 16, n), rng=71
        )
        order = np.arange(n)
        spec = WindowSpec.sliding(400, 100)
        snaps = {}
        for aggregation in ("two_stack", "ring"):
            col = StreamingCollector(oracle, spec, aggregation=aggregation)
            out = []
            for start in range(0, n, 100):
                col.absorb(
                    slice_reports(reports, (order >= start) & (order < start + 100))
                )
                out.append(col.roll())
            snaps[aggregation] = out
        for a, b in zip(snaps["two_stack"], snaps["ring"]):
            assert np.array_equal(a.window_estimates, b.window_estimates)
            assert np.array_equal(a.cumulative_estimates, b.cumulative_estimates)
            assert a.window_users == b.window_users
            assert a.pane_count == b.pane_count

    def test_two_stack_snapshot_merges_constant_components(self):
        # Whatever the pane count, a two-stack window view is built from
        # at most two closed-pane components (+ the open pane); the ring
        # pays one component per pane — that's the whole point.
        from repro.protocol.streaming import RingPaneStore, TwoStackPaneStore

        oracle = make_oracle("OUE", 8, 1.0)
        two_stack = TwoStackPaneStore(oracle.accumulator)
        ring = RingPaneStore(oracle.accumulator)
        for seed in range(17):
            reports = oracle.privatize(np.arange(8).repeat(3), rng=seed)
            two_stack.push(oracle.accumulator().absorb(reports))
            ring.push(oracle.accumulator().absorb(reports))
        assert len(two_stack.window_components()) <= 2
        assert len(ring.window_components()) == 17

    def test_aggregation_validation(self):
        with pytest.raises(ValueError):
            StreamingCollector(make_oracle("DE", 4, 1.0), aggregation="btree")


class TestAdvancedComposition:
    def test_trajectories_basic_vs_advanced(self):
        # Many small-ε windows: the advanced bound's √k growth beats the
        # linear basic sum (that's what it is for); with only a few
        # windows the slack term makes it worse — both directions pinned.
        oracle = make_oracle("OLH", 8, 0.05)
        values = np.random.default_rng(80).integers(0, 8, 2000)
        basic = stream_collection(
            oracle, values, window_size=20, rng=81, composition="basic"
        )
        advanced = stream_collection(
            oracle, values, window_size=20, rng=81, composition="advanced"
        )
        assert advanced.composition == "advanced"
        # Identical spends recorded either way — composition is the lens.
        assert len(basic.ledger) == len(advanced.ledger) == 100
        k = np.arange(1, 101)
        basic_traj = np.array([s.total_epsilon for s in basic])
        adv_traj = np.array([s.total_epsilon for s in advanced])
        assert np.allclose(basic_traj, 0.05 * k)
        # Advanced loses while k is small, wins once k is large.
        assert adv_traj[0] > basic_traj[0]
        assert adv_traj[-1] < basic_traj[-1]
        # And matches the ledger's own advanced total at stream end.
        eps_adv, _ = advanced.ledger.total_advanced(1e-9)
        assert math.isclose(adv_traj[-1], eps_adv)

    def test_advanced_cap_refuses_before_absorbing(self):
        # 10 windows at ε=0.5 cost 5.0 under basic composition but more
        # under the advanced bound at this slack — the advanced stream
        # must die earlier than the basic one against the same cap.
        oracle = make_oracle("OLH", 8, 0.5)
        values = np.random.default_rng(82).integers(0, 8, 1000)
        cap = 4.0
        basic_ledger = PrivacyLedger(epsilon_cap=cap)
        with pytest.raises(BudgetExceededError):
            stream_collection(
                oracle, values, window_size=100, rng=83, ledger=basic_ledger
            )
        advanced_ledger = PrivacyLedger(epsilon_cap=cap)
        with pytest.raises(BudgetExceededError):
            stream_collection(
                oracle,
                values,
                window_size=100,
                rng=83,
                ledger=advanced_ledger,
                composition="advanced",
            )
        assert len(advanced_ledger) < len(basic_ledger)
        # Nothing was recorded for the refused advanced window.
        eps_adv, _ = advanced_ledger.total_advanced(1e-9)
        assert eps_adv <= cap + 1e-9

    def test_advanced_cap_admits_streams_basic_would_refuse(self):
        # The whole point of the advanced option: many small-eps windows
        # whose basic sum breaks the cap but whose DRV bound fits run to
        # completion under composition="advanced".
        oracle = make_oracle("OLH", 8, 0.05)
        values = np.random.default_rng(88).integers(0, 8, 2000)
        cap = 4.0
        with pytest.raises(BudgetExceededError):
            stream_collection(
                oracle, values, window_size=20, rng=89,
                ledger=PrivacyLedger(epsilon_cap=cap),
            )
        ledger = PrivacyLedger(epsilon_cap=cap)
        result = stream_collection(
            oracle, values, window_size=20, rng=89,
            ledger=ledger, composition="advanced",
        )
        assert len(result) == 100  # all windows collected
        eps_adv, _ = ledger.total_advanced(1e-9)
        assert eps_adv <= cap
        # The basic total exceeds the cap — only the advanced lens fits.
        assert ledger.total_epsilon > cap

    def test_composition_validation(self):
        with pytest.raises(ValueError):
            StreamingCollector(make_oracle("DE", 4, 1.0), composition="rdp")
        with pytest.raises(ValueError):
            StreamingCollector(make_oracle("DE", 4, 1.0), delta_slack=0.0)

    def test_advanced_cap_applies_to_one_time_declarations(self):
        # A one-time release whose *advanced* total exceeds the cap must
        # be refused before charging — the first charge records a spend
        # like any other, and only free replays bypass the check.
        from repro.core.budget import SpendDeclaration

        class _MemoOracle:
            def __init__(self):
                self._inner = make_oracle("DE", 8, 1.0)

            def __getattr__(self, name):
                return getattr(self._inner, name)

            def privacy_spend(self):
                return SpendDeclaration(
                    epsilon=1.0, scope="one_time", mechanism="MemoDE"
                )

        from repro.core.budget import PrivacySpend

        oracle = _MemoOracle()
        eps_adv, _ = PrivacyLedger(
            spends=[PrivacySpend(epsilon=1.0)]
        ).total_advanced(1e-9)
        assert eps_adv > 2.0  # the slack term dominates at k=1
        ledger = PrivacyLedger(epsilon_cap=2.0)
        with pytest.raises(BudgetExceededError):
            stream_collection(
                oracle,
                np.random.default_rng(84).integers(0, 8, 100),
                window_size=50,
                rng=85,
                ledger=ledger,
                composition="advanced",
            )
        assert len(ledger) == 0  # refused before anything was recorded

    def test_advanced_one_time_replays_stay_free(self):
        # Once charged, replays of the memoized release record nothing
        # and must not re-trip the advanced cap.
        params = RapporParams(num_bits=16, num_hashes=2, num_cohorts=2)
        aggregator = RapporAggregator(params, 5)
        cohorts, bits = privatize_population(
            params, np.random.default_rng(86).integers(0, 10, 300), 5, rng=87
        )
        from repro.core.budget import PrivacySpend

        eps_adv, _ = PrivacyLedger(
            spends=[PrivacySpend(epsilon=params.epsilon_permanent)]
        ).total_advanced(1e-9)
        ledger = PrivacyLedger(epsilon_cap=eps_adv + 0.1)
        col = StreamingCollector(
            aggregator, ledger=ledger, composition="advanced"
        )
        for w in range(3):
            sel = slice(w * 100, (w + 1) * 100)
            col.absorb((cohorts[sel], bits[sel]))
            col.roll()
        assert len(ledger) == 1  # charged once; replays free
