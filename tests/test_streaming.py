"""Streaming/windowed collection: the evolving-data shape.

`StreamingCollector` snapshots a live accumulator, which is only sound
because finalize is pure and merge never mutates its argument.  These
tests pin the window algebra (tumbling + cumulative), the equality of
the final cumulative snapshot with the one-shot batch estimate, and the
snapshot's non-destructiveness (reading the stream must not disturb it).
"""

import numpy as np
import pytest

from repro.core import ORACLE_REGISTRY, OptimalLocalHashing, make_oracle
from repro.protocol import StreamingCollector, stream_collection
from repro.systems.microsoft import OneBitMean


class TestStreamingCollector:
    def test_snapshot_is_repeatable_and_non_destructive(self):
        oracle = OptimalLocalHashing(16, 1.5)
        gen = np.random.default_rng(1)
        chunk_a = oracle.privatize(gen.integers(0, 16, 500), rng=gen)
        chunk_b = oracle.privatize(gen.integers(0, 16, 500), rng=gen)
        col = StreamingCollector(oracle)
        col.absorb(chunk_a)
        s1 = col.snapshot()
        s2 = col.snapshot()
        assert np.array_equal(s1.cumulative_estimates, s2.cumulative_estimates)
        assert np.array_equal(s1.window_estimates, s2.window_estimates)
        # Reading did not disturb the stream: absorbing more afterwards
        # lands exactly where an unsnapshotted accumulator would.
        col.absorb(chunk_b)
        expected = oracle.accumulator().absorb(chunk_a).absorb(chunk_b).finalize()
        assert col.total_users == 1000
        assert np.array_equal(col.snapshot().cumulative_estimates, expected)

    def test_roll_closes_tumbling_windows(self):
        oracle = make_oracle("DE", 8, 1.0)
        col = StreamingCollector(oracle)
        gen = np.random.default_rng(3)
        first = oracle.privatize(gen.integers(0, 8, 300), rng=gen)
        second = oracle.privatize(gen.integers(0, 8, 200), rng=gen)
        snap0 = col.absorb(first).roll()
        assert snap0.window_index == 0
        assert snap0.window_users == 300
        assert col.window_index == 1
        assert col.window_users == 0
        snap1 = col.absorb(second).roll()
        assert snap1.window_index == 1
        assert snap1.window_users == 200
        assert snap1.total_users == 500
        # Tumbling estimates cover only their window's reports.
        assert np.array_equal(
            snap1.window_estimates, oracle.estimate_counts(second)
        )

    def test_empty_window_snapshot(self):
        oracle = make_oracle("OUE", 8, 1.0)
        col = StreamingCollector(oracle)
        col.absorb(oracle.privatize(np.arange(8).repeat(10), rng=1)).roll()
        snap = col.snapshot()  # nothing absorbed since the roll
        assert snap.window_users == 0
        assert snap.window_estimates is None
        assert snap.total_users == 80

    def test_empty_stream_snapshot_is_graceful(self):
        # Polling a just-started stream must not crash, even for
        # mechanisms whose finalize rejects n=0 (1BitMean).
        for factory in (lambda: make_oracle("DE", 8, 1.0),
                        lambda: OneBitMean(100.0, 1.0)):
            snap = StreamingCollector(factory()).snapshot()
            assert snap.total_users == 0
            assert snap.window_estimates is None
            assert snap.cumulative_estimates is None

    @pytest.mark.parametrize("name", sorted(ORACLE_REGISTRY))
    def test_final_cumulative_snapshot_equals_one_shot_batch(
        self, name, slice_reports
    ):
        oracle = make_oracle(name, 8, 1.2)
        values = np.random.default_rng(7).integers(0, 8, size=900)
        reports = oracle.privatize(values, rng=8)
        whole = oracle.estimate_counts(reports)
        col = StreamingCollector(oracle)
        order = np.arange(900)
        for start in range(0, 900, 225):
            mask = (order >= start) & (order < start + 225)
            col.absorb(slice_reports(reports, mask))
            col.roll()
        final = col.snapshot()
        assert final.total_users == 900
        if name == "SHE":
            assert np.allclose(
                final.cumulative_estimates, whole, rtol=1e-9, atol=1e-9
            )
        else:
            assert np.array_equal(final.cumulative_estimates, whole)

    def test_works_with_non_frequency_mechanisms(self):
        # Anything with an accumulator() streams — Microsoft's 1BitMean
        # is the evolving-telemetry case in the flesh.
        mech = OneBitMean(100.0, 1.0)
        xs = np.random.default_rng(9).uniform(0, 100, size=600)
        bits = mech.privatize(xs, rng=10)
        col = StreamingCollector(mech)
        col.absorb(bits[:300]).roll()
        col.absorb(bits[300:])
        final = col.snapshot()
        assert final.total_users == 600
        assert float(final.cumulative_estimates[0]) == mech.estimate_mean(bits)


class TestStreamCollectionDriver:
    def test_window_schedule_and_coverage(self):
        oracle = make_oracle("OLH", 16, 1.5)
        values = np.random.default_rng(11).integers(0, 16, size=2600)
        snaps = stream_collection(
            oracle, values, window_size=1000, chunk_size=300, rng=12
        )
        assert [s.window_users for s in snaps] == [1000, 1000, 600]
        assert [s.window_index for s in snaps] == [0, 1, 2]
        assert snaps[-1].total_users == 2600
        assert all(s.snapshot_seconds >= 0.0 for s in snaps)

    def test_estimates_land_near_truth(self):
        oracle = make_oracle("DE", 8, 2.0)
        values = np.arange(8).repeat(500)
        snaps = stream_collection(
            oracle, values, window_size=2000, chunk_size=512, rng=13
        )
        sd = oracle.count_stddev(4000, f=1 / 8)
        assert np.all(
            np.abs(snaps[-1].cumulative_estimates - 500) < 6 * sd
        )

    def test_validation(self):
        oracle = make_oracle("DE", 4, 1.0)
        with pytest.raises(ValueError):
            stream_collection(oracle, np.arange(4), window_size=0)
        with pytest.raises(ValueError):
            stream_collection(oracle, np.zeros((2, 2)), window_size=2)
