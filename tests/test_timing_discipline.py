"""Timing-capture discipline: latency numbers must be monotonic.

The benchmark JSON trajectory compares latencies across runs, so every
timing capture in the measurement paths must use ``time.perf_counter()``
(monotonic, high resolution) — ``time.time()`` is wall-clock and jumps
under NTP adjustment, which silently corrupts latency deltas.  This test
is the audit: it fails the moment a drift-prone call site appears in
``src/repro/protocol``, ``src/repro/experiments`` or ``benchmarks``.
"""

import pathlib
import re

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent
AUDITED_DIRS = (
    REPO_ROOT / "src" / "repro" / "protocol",
    REPO_ROOT / "src" / "repro" / "experiments",
    REPO_ROOT / "benchmarks",
)

_DRIFT_PRONE = re.compile(r"\btime\.time\(|\btime\.clock\(")


def test_no_drift_prone_timing_in_measurement_paths():
    offenders = []
    for root in AUDITED_DIRS:
        for path in sorted(root.rglob("*.py")):
            for lineno, line in enumerate(
                path.read_text(encoding="utf-8").splitlines(), start=1
            ):
                if _DRIFT_PRONE.search(line):
                    offenders.append(f"{path.relative_to(REPO_ROOT)}:{lineno}")
    assert not offenders, (
        "drift-prone wall-clock timing in measurement paths (use "
        f"time.perf_counter()): {offenders}"
    )
