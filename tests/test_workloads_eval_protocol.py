"""Tests for workload generators, metrics, tables, and the protocol layer."""

import math

import numpy as np
import pytest

from repro.core import DirectEncoding, OptimalLocalHashing, OptimalUnaryEncoding
from repro.eval import (
    Table,
    js_divergence,
    kl_divergence,
    l1_error,
    l2_error,
    max_error,
    mse,
    ncr,
    topk_f1,
    topk_precision,
    topk_recall,
    topk_set,
)
from repro.protocol import report_bytes, run_collection
from repro.workloads import (
    geometric_frequencies,
    sample_from_frequencies,
    telemetry_trajectories,
    true_counts,
    uniform_frequencies,
    zipf_frequencies,
)


class TestCategoricalWorkloads:
    def test_zipf_normalized_and_decreasing(self):
        f = zipf_frequencies(100, 1.1)
        assert np.isclose(f.sum(), 1.0)
        assert np.all(np.diff(f) <= 0)

    def test_zipf_exponent_validation(self):
        with pytest.raises(ValueError):
            zipf_frequencies(10, 0.0)

    def test_geometric_head_heavier_than_zipf(self):
        g = geometric_frequencies(50, 0.5)
        z = zipf_frequencies(50, 1.1)
        assert g[0] > z[0]

    def test_uniform(self):
        f = uniform_frequencies(10)
        assert np.allclose(f, 0.1)

    def test_sampling_respects_distribution(self):
        f = zipf_frequencies(20, 1.5)
        values = sample_from_frequencies(f, 100_000, rng=3)
        emp = true_counts(values, 20) / 100_000
        assert np.all(np.abs(emp - f) < 5 * np.sqrt(f * (1 - f) / 100_000) + 1e-4)

    def test_sampling_validation(self):
        with pytest.raises(ValueError):
            sample_from_frequencies(np.asarray([0.5, 0.6]), 10)

    def test_true_counts_domain_check(self):
        with pytest.raises(ValueError):
            true_counts(np.asarray([5]), 4)


class TestTelemetryWorkload:
    def test_shape_and_bounds(self):
        traj = telemetry_trajectories(100, 12, 50.0, rng=3)
        assert traj.shape == (100, 12)
        assert traj.min() >= 0.0
        assert traj.max() <= 50.0

    def test_persistence_controls_change_rate(self):
        sticky = telemetry_trajectories(
            2000, 20, 100.0, persistence=0.99, volatility=0.01, rng=5
        )
        jumpy = telemetry_trajectories(
            2000, 20, 100.0, persistence=0.0, volatility=0.3, rng=5
        )
        assert np.abs(np.diff(sticky, axis=1)).mean() < np.abs(
            np.diff(jumpy, axis=1)
        ).mean()

    def test_validation(self):
        with pytest.raises(ValueError):
            telemetry_trajectories(10, 5, -1.0)


class TestMetrics:
    def test_error_metrics_zero_on_identity(self):
        x = np.asarray([1.0, 2.0, 3.0])
        assert l1_error(x, x) == 0.0
        assert l2_error(x, x) == 0.0
        assert max_error(x, x) == 0.0
        assert mse(x, x) == 0.0

    def test_error_metric_values(self):
        t = np.asarray([1.0, 2.0])
        e = np.asarray([2.0, 0.0])
        assert l1_error(t, e) == 3.0
        assert math.isclose(l2_error(t, e), math.sqrt(5.0))
        assert max_error(t, e) == 2.0
        assert mse(t, e) == 2.5

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            l1_error(np.zeros(2), np.zeros(3))

    def test_kl_zero_on_identity(self):
        p = np.asarray([0.3, 0.7])
        assert kl_divergence(p, p) < 1e-9

    def test_kl_positive(self):
        assert kl_divergence([0.9, 0.1], [0.5, 0.5]) > 0

    def test_js_symmetric_and_bounded(self):
        p = np.asarray([0.9, 0.1])
        q = np.asarray([0.2, 0.8])
        assert math.isclose(js_divergence(p, q), js_divergence(q, p))
        assert 0 <= js_divergence(p, q) <= math.log(2) + 1e-9

    def test_kl_rejects_zero_mass(self):
        with pytest.raises(ValueError):
            kl_divergence([0.0, 0.0], [0.5, 0.5])

    def test_topk_set_ties_break_by_index(self):
        counts = np.asarray([5.0, 5.0, 1.0])
        assert topk_set(counts, 1) == {0}

    def test_topk_precision(self):
        truth = np.asarray([10.0, 8.0, 3.0, 1.0])
        est = np.asarray([9.0, 2.0, 7.0, 1.0])
        assert topk_precision(truth, est, 2) == 0.5

    def test_topk_recall_f1(self):
        true_set = {1, 2, 3, 4}
        found = {1, 2, 9}
        assert topk_recall(true_set, found) == 0.5
        p, r = 2 / 3, 0.5
        assert math.isclose(topk_f1(true_set, found), 2 * p * r / (p + r))

    def test_f1_empty_found(self):
        assert topk_f1({1}, set()) == 0.0

    def test_ncr_weighting(self):
        truth = np.asarray([10.0, 5.0, 1.0])
        # finding only the top item: weight 2 of total 3 at k=2
        assert math.isclose(ncr(truth, {0}, 2), 2 / 3)
        assert math.isclose(ncr(truth, {1}, 2), 1 / 3)

    def test_ncr_bounds_check(self):
        with pytest.raises(ValueError):
            ncr(np.asarray([1.0]), set(), 2)


class TestTable:
    def test_add_row_and_render(self):
        table = Table("T", ["a", "b"])
        table.add_row(1, 2.5)
        table.add_note("seed=3")
        text = table.render()
        assert "T" in text and "2.5" in text and "seed=3" in text

    def test_row_width_check(self):
        table = Table("T", ["a"])
        with pytest.raises(ValueError):
            table.add_row(1, 2)

    def test_column_access(self):
        table = Table("T", ["a", "b"])
        table.add_row(1, 2)
        table.add_row(3, 4)
        assert table.column("b") == [2, 4]
        with pytest.raises(KeyError):
            table.column("c")

    def test_float_formatting(self):
        table = Table("T", ["x"])
        table.add_row(1.23456e-7)
        assert "e-07" in table.render()


class TestProtocol:
    def test_run_collection_outputs(self):
        oracle = DirectEncoding(16, 1.0)
        values = np.arange(16).repeat(100)
        stats = run_collection(oracle, values, rng=3)
        assert stats.num_users == 1600
        assert stats.estimated_counts.shape == (16,)
        assert stats.encode_seconds >= 0
        assert stats.total_bytes == stats.bytes_per_report * 1600

    def test_report_bytes_by_mechanism(self):
        n = 64
        values = np.arange(64)
        de_reports = DirectEncoding(64, 1.0).privatize(values, rng=1)
        oue_reports = OptimalUnaryEncoding(64, 1.0).privatize(values, rng=1)
        olh_reports = OptimalLocalHashing(64, 1.0).privatize(values, rng=1)
        assert report_bytes(de_reports, n) == 8  # one int64
        assert report_bytes(oue_reports, n) == 8  # 64 bits
        assert report_bytes(olh_reports, n) == 16  # seed + value

    def test_report_bytes_validation(self):
        with pytest.raises(ValueError):
            report_bytes(np.zeros(3), 0)
        with pytest.raises(TypeError):
            report_bytes(np.zeros((2, 2, 2)), 4)
