"""Unit tests for the vectorized Bloom filter."""

import numpy as np
import pytest

from repro.util.bloom import BloomFilter


class TestEncode:
    def test_encode_sets_at_most_h_bits(self):
        bloom = BloomFilter(64, 2, seed=1)
        bits = bloom.encode(42)
        assert bits.shape == (64,)
        assert 1 <= bits.sum() <= 2

    def test_encode_deterministic(self):
        a = BloomFilter(64, 2, seed=1).encode(7)
        b = BloomFilter(64, 2, seed=1).encode(7)
        assert np.array_equal(a, b)

    def test_different_seed_different_encoding(self):
        a = BloomFilter(256, 2, seed=1).encode_batch(np.arange(100))
        b = BloomFilter(256, 2, seed=2).encode_batch(np.arange(100))
        assert not np.array_equal(a, b)

    def test_encode_batch_matches_single(self):
        bloom = BloomFilter(128, 3, seed=5)
        values = np.arange(50, dtype=np.int64)
        batch = bloom.encode_batch(values)
        for i, v in enumerate(values):
            assert np.array_equal(batch[i], bloom.encode(int(v)))

    def test_encode_batch_rejects_2d(self):
        bloom = BloomFilter(64, 2, seed=0)
        with pytest.raises(ValueError):
            bloom.encode_batch(np.zeros((2, 2), dtype=np.int64))


class TestContains:
    def test_no_false_negatives(self):
        bloom = BloomFilter(128, 2, seed=9)
        values = np.arange(200, 230, dtype=np.int64)
        union = bloom.encode_batch(values).max(axis=0)
        for v in values:
            assert bloom.contains(union, int(v))

    def test_wrong_shape_raises(self):
        bloom = BloomFilter(64, 2, seed=0)
        with pytest.raises(ValueError):
            bloom.contains(np.zeros(32), 1)

    def test_empty_filter_contains_nothing_usually(self):
        bloom = BloomFilter(64, 2, seed=3)
        empty = np.zeros(64, dtype=np.uint8)
        assert not bloom.contains(empty, 10)


class TestFalsePositiveRate:
    def test_formula_monotone_in_inserts(self):
        bloom = BloomFilter(128, 2, seed=0)
        rates = [bloom.false_positive_rate(k) for k in (1, 10, 50, 200)]
        assert all(a < b for a, b in zip(rates, rates[1:]))

    def test_empirical_rate_close_to_formula(self):
        bloom = BloomFilter(128, 2, seed=21)
        inserted = np.arange(40, dtype=np.int64)
        union = bloom.encode_batch(inserted).max(axis=0)
        probes = np.arange(10_000, 30_000, dtype=np.int64)
        hits = sum(bloom.contains(union, int(v)) for v in probes[:2000])
        empirical = hits / 2000
        predicted = bloom.false_positive_rate(40)
        assert abs(empirical - predicted) < 0.05

    def test_rejects_zero_inserts(self):
        bloom = BloomFilter(64, 2, seed=0)
        with pytest.raises(ValueError):
            bloom.false_positive_rate(0)


class TestConstruction:
    def test_rejects_zero_bits(self):
        with pytest.raises(ValueError):
            BloomFilter(0, 2, seed=0)

    def test_rejects_zero_hashes(self):
        with pytest.raises(ValueError):
            BloomFilter(64, 0, seed=0)
