"""Unit tests for the pairwise hash families."""

import numpy as np
import pytest

from repro.util.hashing import (
    MERSENNE_P,
    SeededHashFamily,
    hash_cross,
    hash_elementwise,
    hash_matrix,
    params_from_seeds,
)


class TestParamsFromSeeds:
    def test_a_in_valid_range(self):
        seeds = np.arange(1000, dtype=np.uint64)
        a, b = params_from_seeds(seeds)
        assert a.min() >= 1
        assert int(a.max()) < int(MERSENNE_P)
        assert b.min() >= 0
        assert int(b.max()) < int(MERSENNE_P)

    def test_deterministic(self):
        seeds = np.asarray([7, 8, 9], dtype=np.uint64)
        a1, b1 = params_from_seeds(seeds)
        a2, b2 = params_from_seeds(seeds)
        assert np.array_equal(a1, a2)
        assert np.array_equal(b1, b2)


class TestHashElementwise:
    def test_range(self):
        seeds = np.arange(500, dtype=np.uint64)
        values = np.arange(500, dtype=np.int64) % 97
        out = hash_elementwise(seeds, values, 16)
        assert out.min() >= 0
        assert out.max() < 16

    def test_matches_matrix_path(self):
        seeds = np.arange(50, dtype=np.uint64) + 1000
        values = (np.arange(50, dtype=np.int64) * 13) % 64
        elementwise = hash_elementwise(seeds, values, 8)
        matrix = hash_matrix(seeds, 64, 8)
        expected = matrix[np.arange(50), values]
        assert np.array_equal(elementwise, expected)

    def test_shape_mismatch_raises(self):
        with pytest.raises(ValueError, match="align"):
            hash_elementwise(
                np.arange(3, dtype=np.uint64), np.arange(4, dtype=np.int64), 4
            )

    def test_range_size_validation(self):
        with pytest.raises(ValueError):
            hash_elementwise(
                np.arange(3, dtype=np.uint64), np.arange(3, dtype=np.int64), 0
            )


class TestHashCross:
    def test_shape(self):
        out = hash_cross(
            np.arange(10, dtype=np.uint64), np.arange(7, dtype=np.int64), 4
        )
        assert out.shape == (10, 7)

    def test_chunking_invariant(self):
        seeds = np.arange(100, dtype=np.uint64)
        values = np.arange(33, dtype=np.int64)
        big = hash_cross(seeds, values, 8, chunk=1 << 22)
        tiny = hash_cross(seeds, values, 8, chunk=64)
        assert np.array_equal(big, tiny)

    def test_rejects_2d_values(self):
        with pytest.raises(ValueError, match="1-D"):
            hash_cross(
                np.arange(3, dtype=np.uint64), np.zeros((2, 2), dtype=np.int64), 4
            )


class TestHashUniformity:
    def test_bucket_balance_over_random_functions(self):
        """Across many seeds, one value's hash is near-uniform over [0, g)."""
        seeds = np.arange(40_000, dtype=np.uint64)
        values = np.full(40_000, 12345, dtype=np.int64)
        hashed = hash_elementwise(seeds, values, 8)
        counts = np.bincount(hashed, minlength=8)
        expected = 40_000 / 8
        # 6σ of a binomial(40000, 1/8)
        assert np.all(np.abs(counts - expected) < 6 * np.sqrt(expected * 7 / 8))

    def test_pairwise_collision_rate(self):
        """P(h(x) = h(y)) ≈ 1/g for x ≠ y over random functions."""
        seeds = np.arange(50_000, dtype=np.uint64) + 7
        hx = hash_elementwise(seeds, np.full(50_000, 3, dtype=np.int64), 16)
        hy = hash_elementwise(seeds, np.full(50_000, 4, dtype=np.int64), 16)
        rate = float((hx == hy).mean())
        assert abs(rate - 1 / 16) < 0.006


class TestSeededHashFamily:
    def test_apply_deterministic(self):
        fam1 = SeededHashFamily(4, 32, 99)
        fam2 = SeededHashFamily(4, 32, 99)
        vals = np.arange(100, dtype=np.int64)
        for j in range(4):
            assert np.array_equal(fam1.apply(j, vals), fam2.apply(j, vals))

    def test_different_indices_differ(self):
        fam = SeededHashFamily(2, 1024, 5)
        vals = np.arange(2000, dtype=np.int64)
        assert not np.array_equal(fam.apply(0, vals), fam.apply(1, vals))

    def test_apply_selected_matches_apply(self):
        fam = SeededHashFamily(3, 16, 11)
        vals = np.arange(60, dtype=np.int64)
        idx = np.arange(60, dtype=np.int64) % 3
        selected = fam.apply_selected(idx, vals)
        for j in range(3):
            members = idx == j
            assert np.array_equal(selected[members], fam.apply(j, vals[members]))

    def test_apply_all_shape(self):
        fam = SeededHashFamily(5, 8, 0)
        out = fam.apply_all(np.arange(12, dtype=np.int64))
        assert out.shape == (5, 12)

    def test_index_out_of_range(self):
        fam = SeededHashFamily(2, 8, 0)
        with pytest.raises(IndexError):
            fam.apply(2, np.arange(3, dtype=np.int64))

    def test_apply_selected_bad_index(self):
        fam = SeededHashFamily(2, 8, 0)
        with pytest.raises(IndexError):
            fam.apply_selected(
                np.asarray([0, 5], dtype=np.int64), np.asarray([1, 2], dtype=np.int64)
            )

    def test_apply_selected_shape_mismatch(self):
        fam = SeededHashFamily(2, 8, 0)
        with pytest.raises(ValueError, match="align"):
            fam.apply_selected(
                np.asarray([0], dtype=np.int64), np.asarray([1, 2], dtype=np.int64)
            )

    def test_rejects_nonpositive_k(self):
        with pytest.raises(ValueError):
            SeededHashFamily(0, 8, 0)
