"""Unit tests for the fused decode-kernel layer (repro.util.kernels)."""

import numpy as np
import pytest

from repro.util.kernels import (
    MERSENNE_P,
    FusedSupportKernel,
    HadamardCandidatePlan,
    KernelPlanCache,
    apply_mod,
    candidate_digest,
    column_support_counts,
    hadamard_support_counts,
    kernel_affinity_enabled,
    kernel_plan_cache,
    kernel_thread_count,
    kernel_timing_scope,
    mersenne_reduce,
    mod_magic,
    plan_cache_capacity,
)

P = int(MERSENNE_P)

#: The adversarial dividends: field boundaries, fold boundaries, word
#: boundaries, and multiples of p where the reduction's conditional
#: subtract must land exactly on the canonical residue.
EDGE_VALUES = [
    0,
    1,
    P - 1,
    P,
    P + 1,
    2 * P,
    2 * P + 1,
    2**31,
    2**32 - 1,
    2**32,
    7 * P,
    2**62 - 1,
    2**62,
    2**63 - 1,
    2**63,
    2**64 - 1,
    (2**64 - 1) // P * P,  # largest multiple of p in uint64
]


class TestMersenneReduce:
    def test_edge_values_match_hardware_mod(self):
        x = np.array(EDGE_VALUES, dtype=np.uint64)
        assert np.array_equal(mersenne_reduce(x), x % MERSENNE_P)

    def test_random_values_match_hardware_mod(self):
        x = np.random.default_rng(0).integers(
            0, 2**63, size=10_000, dtype=np.int64
        ).astype(np.uint64) * np.uint64(2)  # cover the top bit too
        assert np.array_equal(mersenne_reduce(x), x % MERSENNE_P)

    def test_result_is_canonical(self):
        x = np.array(EDGE_VALUES, dtype=np.uint64)
        out = mersenne_reduce(x)
        assert out.max() < MERSENNE_P

    def test_in_place_aliasing(self):
        x = np.array(EDGE_VALUES, dtype=np.uint64)
        expected = x % MERSENNE_P
        result = mersenne_reduce(x, out=x)
        assert result is x
        assert np.array_equal(x, expected)

    def test_does_not_mutate_input_by_default(self):
        x = np.array(EDGE_VALUES, dtype=np.uint64)
        before = x.copy()
        mersenne_reduce(x)
        assert np.array_equal(x, before)

    def test_empty(self):
        assert mersenne_reduce(np.array([], dtype=np.uint64)).size == 0


class TestModMagic:
    @pytest.mark.parametrize(
        "g", [1, 2, 3, 4, 5, 7, 8, 11, 64, 1023, 1024, 2**30, 2**31 - 1]
    )
    def test_matches_hardware_mod(self, g):
        # Dividends stay below 2³¹: that is the magic's proven range and
        # apply_mod rejects anything wider (see the boundary tests).
        edges = np.array(
            [v for v in (0, 1, g - 1, g, g + 1, 2 * g, P - 1, P // 2) if v < 2**31],
            dtype=np.uint64,
        )
        rng = np.random.default_rng(g)
        x = np.concatenate(
            [edges, rng.integers(0, P, size=5_000).astype(np.uint64)]
        )
        assert np.array_equal(apply_mod(x, g), x % np.uint64(g))

    def test_apply_mod_dividend_boundary(self):
        # 2³¹ − 1 is the largest proven dividend: exact.
        top = np.array([0, 1, 2**31 - 2, 2**31 - 1], dtype=np.uint64)
        for g in (3, 7, 1024, 2**31 - 1):
            assert np.array_equal(apply_mod(top, g), top % np.uint64(g))
        # 2³¹ is one past the Granlund–Montgomery proof: rejected, not
        # silently wrong.
        with pytest.raises(ValueError):
            apply_mod(np.array([2**31], dtype=np.uint64), 7)
        with pytest.raises(ValueError):
            apply_mod(np.array([5, 2**40], dtype=np.uint64), 1024)

    def test_rejects_out_of_range_divisors(self):
        with pytest.raises(ValueError):
            mod_magic(0)
        with pytest.raises(ValueError):
            mod_magic(2**31)

    def test_apply_mod_falls_back_beyond_magic_range(self):
        x = np.array([0, 5, 2**31 - 1], dtype=np.uint64)
        g = 2**31  # out of magic range: hardware % fallback
        assert np.array_equal(apply_mod(x, g), x % np.uint64(g))


def _brute_support_counts(a, b, y, premixed, g):
    h = (a[:, None] * premixed[None, :] + b[:, None]) % MERSENNE_P
    return ((h % np.uint64(g)) == y[:, None]).sum(axis=0).astype(np.float64)


class TestFusedSupportKernel:
    @pytest.mark.parametrize("g", [2, 8, 17])
    @pytest.mark.parametrize("d", [1, 3, 64])
    def test_matches_brute_force(self, g, d):
        rng = np.random.default_rng(d * 100 + g)
        n = 700
        a = rng.integers(1, P, size=n).astype(np.uint64)
        b = rng.integers(0, P, size=n).astype(np.uint64)
        y = rng.integers(0, g, size=n).astype(np.uint64)
        premixed = rng.integers(0, P, size=d).astype(np.uint64)
        kernel = FusedSupportKernel(premixed, g)
        out = kernel.support_counts(a, b, y)
        assert out.dtype == np.float64
        assert np.array_equal(out, _brute_support_counts(a, b, y, premixed, g))

    def test_edge_parameters(self):
        # a at field max, b at 0/max, premixed at 0 and p−1: the affine
        # image hits both fold boundaries.
        a = np.array([1, P - 1, P - 1, 1], dtype=np.uint64)
        b = np.array([0, P - 1, 0, P - 1], dtype=np.uint64)
        y = np.array([0, 1, 1, 0], dtype=np.uint64)
        premixed = np.array([0, P - 1, 1], dtype=np.uint64)
        kernel = FusedSupportKernel(premixed, 2)
        assert np.array_equal(
            kernel.support_counts(a, b, y),
            _brute_support_counts(a, b, y, premixed, 2),
        )

    def test_empty_reports(self):
        kernel = FusedSupportKernel(np.arange(5, dtype=np.uint64), 4)
        empty = np.array([], dtype=np.uint64)
        assert np.array_equal(
            kernel.support_counts(empty, empty, empty), np.zeros(5)
        )

    def test_empty_candidates(self):
        kernel = FusedSupportKernel(np.array([], dtype=np.uint64), 4)
        one = np.zeros(3, dtype=np.uint64)
        assert kernel.support_counts(one, one, one).shape == (0,)

    def test_thread_fanout_is_bit_identical(self):
        rng = np.random.default_rng(7)
        n = 40_000  # large enough to cross the parallel threshold
        a = rng.integers(1, P, size=n).astype(np.uint64)
        b = rng.integers(0, P, size=n).astype(np.uint64)
        y = rng.integers(0, 8, size=n).astype(np.uint64)
        premixed = rng.integers(0, P, size=64).astype(np.uint64)
        serial = FusedSupportKernel(premixed, 8, threads=1).support_counts(a, b, y)
        fanned = FusedSupportKernel(premixed, 8, threads=3).support_counts(a, b, y)
        assert np.array_equal(serial, fanned)

    def test_rejects_misaligned_inputs(self):
        kernel = FusedSupportKernel(np.arange(4, dtype=np.uint64), 4)
        with pytest.raises(ValueError):
            kernel.support_counts(
                np.zeros(3, dtype=np.uint64),
                np.zeros(2, dtype=np.uint64),
                np.zeros(3, dtype=np.uint64),
            )

    def test_rejects_oversized_range(self):
        with pytest.raises(ValueError):
            FusedSupportKernel(np.arange(4, dtype=np.uint64), 2**31)


class TestHadamardSupportCounts:
    def test_matches_direct_formula(self):
        rng = np.random.default_rng(11)
        n, d = 3_000, 16
        idx = rng.integers(0, 64, size=n).astype(np.uint64)
        bits = rng.choice([-1.0, 1.0], size=n)
        cands = np.arange(d, dtype=np.uint64)
        from repro.util.wht import hadamard_entries

        expected = np.empty(d)
        for pos in range(d):
            entries = hadamard_entries(idx, np.uint64(pos))
            expected[pos] = n / 2.0 + 0.5 * float(bits @ entries)
        assert np.array_equal(
            hadamard_support_counts(idx, bits, cands), expected
        )

    def test_tiling_boundaries(self):
        rng = np.random.default_rng(12)
        n = 100
        idx = rng.integers(0, 8, size=n).astype(np.uint64)
        bits = rng.choice([-1.0, 1.0], size=n)
        cands = np.arange(8, dtype=np.uint64)
        whole = hadamard_support_counts(idx, bits, cands)
        tiled = hadamard_support_counts(idx, bits, cands, tile_reports=7)
        assert np.array_equal(whole, tiled)

    def test_empty(self):
        empty = np.array([], dtype=np.uint64)
        out = hadamard_support_counts(empty, np.array([]), np.arange(3, dtype=np.uint64))
        assert np.array_equal(out, np.zeros(3))


class TestColumnSupportCounts:
    def test_matches_float_sum(self):
        arr = np.random.default_rng(5).integers(0, 2, size=(999, 17)).astype(np.uint8)
        expected = arr.sum(axis=0, dtype=np.float64)
        out = column_support_counts(arr, tile_rows=128)
        assert out.dtype == np.float64
        assert np.array_equal(out, expected)

    def test_empty_rows(self):
        out = column_support_counts(np.zeros((0, 4), dtype=np.uint8))
        assert np.array_equal(out, np.zeros(4))


class TestTimingScope:
    def test_records_kernel_stages(self):
        rng = np.random.default_rng(3)
        n = 5_000
        a = rng.integers(1, P, size=n).astype(np.uint64)
        b = rng.integers(0, P, size=n).astype(np.uint64)
        y = rng.integers(0, 8, size=n).astype(np.uint64)
        kernel = FusedSupportKernel(
            rng.integers(0, P, size=32).astype(np.uint64), 8, threads=1
        )
        with kernel_timing_scope() as timing:
            kernel.support_counts(a, b, y)
        assert timing.hash_seconds > 0.0
        assert timing.accumulate_seconds > 0.0

    def test_scopes_nest_and_restore(self):
        arr = np.ones((64, 4), dtype=np.uint8)
        with kernel_timing_scope() as outer:
            column_support_counts(arr)
            outer_before_inner = outer.accumulate_seconds
            with kernel_timing_scope() as inner:
                column_support_counts(arr)
            # the inner scope captured its own call...
            assert inner.accumulate_seconds > 0.0
            # ...without leaking into the outer scope...
            assert outer.accumulate_seconds == outer_before_inner
            # ...and the outer scope is active again afterwards.
            column_support_counts(arr)
            assert outer.accumulate_seconds > outer_before_inner

    def test_no_scope_is_fine(self):
        # kernels must run (and not crash) without any active scope
        assert column_support_counts(np.ones((2, 2), dtype=np.uint8))[0] == 2.0


class TestKernelPlanCache:
    def test_hit_returns_same_object(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_PLAN_CACHE", raising=False)
        cache = KernelPlanCache()
        built = []

        def build():
            built.append(1)
            return object()

        first = cache.get(("k", 1), build)
        second = cache.get(("k", 1), build)
        assert first is second
        assert len(built) == 1
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_candidate_set_change_is_a_miss(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_PLAN_CACHE", raising=False)
        cache = KernelPlanCache()
        a = np.arange(8, dtype=np.int64)
        b = np.arange(1, 9, dtype=np.int64)
        one = cache.get(("k", candidate_digest(a)), lambda: "plan-a")
        other = cache.get(("k", candidate_digest(b)), lambda: "plan-b")
        assert one == "plan-a" and other == "plan-b"
        assert cache.stats()["misses"] == 2

    def test_config_fingerprint_mismatch_is_a_miss(self, monkeypatch):
        """Same candidates, different oracle config → different kernels."""
        monkeypatch.delenv("REPRO_KERNEL_PLAN_CACHE", raising=False)
        from repro.core import OptimalLocalHashing

        cands = np.arange(6, dtype=np.int64)
        k1 = OptimalLocalHashing(6, 1.0)._support_kernel(cands)
        k2 = OptimalLocalHashing(6, 3.0)._support_kernel(cands)  # other g
        k1_again = OptimalLocalHashing(6, 1.0)._support_kernel(cands)
        assert k1 is not k2
        assert k1 is k1_again  # same fingerprint + candidates → shared plan

    def test_lru_eviction_under_cap(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_PLAN_CACHE", "2")
        cache = KernelPlanCache()
        cache.get(("a",), lambda: 1)
        cache.get(("b",), lambda: 2)
        cache.get(("a",), lambda: 1)  # refresh a: b is now LRU
        cache.get(("c",), lambda: 3)  # evicts b
        assert len(cache) == 2
        assert cache.stats()["evictions"] == 1
        assert cache.get(("a",), lambda: "rebuilt") == 1  # a survived the evict
        built = []
        cache.get(("b",), lambda: built.append(1) or 2)  # b was evicted: rebuilt
        assert built

    def test_cap_zero_disables_caching(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_PLAN_CACHE", "0")
        cache = KernelPlanCache()
        first = cache.get(("k",), lambda: object())
        second = cache.get(("k",), lambda: object())
        assert first is not second
        assert len(cache) == 0

    def test_capacity_env_parsing(self, monkeypatch):
        monkeypatch.setenv("REPRO_KERNEL_PLAN_CACHE", "7")
        assert plan_cache_capacity() == 7
        monkeypatch.setenv("REPRO_KERNEL_PLAN_CACHE", "junk")
        assert plan_cache_capacity() > 0
        monkeypatch.delenv("REPRO_KERNEL_PLAN_CACHE")
        assert plan_cache_capacity() > 0

    def test_digest_distinguishes_dtype_and_content(self):
        a = np.arange(4, dtype=np.int64)
        assert candidate_digest(a) == candidate_digest(a.copy())
        assert candidate_digest(a) != candidate_digest(a.astype(np.uint64))
        assert candidate_digest(a) != candidate_digest(a[::-1].copy())

    def test_cached_plans_are_immutable(self):
        kernel = FusedSupportKernel(np.arange(5, dtype=np.uint64), 4)
        with pytest.raises(ValueError):
            kernel._x[0] = 1
        plan = HadamardCandidatePlan(np.arange(5, dtype=np.uint64))
        with pytest.raises(ValueError):
            plan.candidates[0] = 1
        with pytest.raises(ValueError):
            plan.bit_masks[0, 0] = True

    def test_plan_build_does_not_freeze_caller_array(self):
        cands = np.arange(5, dtype=np.uint64)
        FusedSupportKernel(cands, 4)
        HadamardCandidatePlan(cands)
        cands[0] = 7  # caller's array must stay writable

    def test_accumulator_round_trips_never_share_scratch(self, monkeypatch):
        """copy()/to_bytes() of a cache-hitting accumulator is self-contained.

        Scratch lives in per-thread pools and plans only in the global
        cache — nothing cache- or scratch-related may appear on the
        accumulator, so copies and serialized round-trips can never
        alias live buffers.
        """
        monkeypatch.delenv("REPRO_KERNEL_PLAN_CACHE", raising=False)
        from repro.core import HadamardResponse, OptimalLocalHashing

        for oracle in (OptimalLocalHashing(16, 1.5), HadamardResponse(16, 1.5)):
            rng = np.random.default_rng(7)
            cands = np.array([1, 5, 9])
            acc = oracle.accumulator(cands)
            acc.absorb(oracle.privatize(rng.integers(0, 16, size=200), rng=rng))
            dup = acc.copy()
            wire = oracle.accumulator(cands).from_bytes(acc.to_bytes())
            baseline = acc.finalize().copy()
            # diverge the copies; the original must not move
            more = oracle.privatize(rng.integers(0, 16, size=100), rng=rng)
            dup.absorb(more)
            wire.absorb(more)
            assert np.array_equal(acc.finalize(), baseline)
            assert np.array_equal(
                dup.finalize(),
                wire.finalize(),
            )
            # no *mutable* ndarray state is shared between the original
            # and its round-trips (immutable config like the candidate
            # list may be shared; live state and scratch may not)
            for other in (dup, wire):
                for name, val in vars(acc).items():
                    if isinstance(val, np.ndarray) and name != "_candidates":
                        assert not np.shares_memory(val, vars(other).get(name))


class TestAffinityScheduling:
    def test_env_opt_out(self, monkeypatch):
        monkeypatch.delenv("REPRO_KERNEL_AFFINITY", raising=False)
        assert kernel_affinity_enabled()
        for off in ("0", "false", "OFF", "no"):
            monkeypatch.setenv("REPRO_KERNEL_AFFINITY", off)
            assert not kernel_affinity_enabled()
        monkeypatch.setenv("REPRO_KERNEL_AFFINITY", "1")
        assert kernel_affinity_enabled()

    @pytest.mark.parametrize("affinity", ["1", "0"])
    def test_worker_tiles_recorded_and_result_identical(self, monkeypatch, affinity):
        monkeypatch.setenv("REPRO_KERNEL_AFFINITY", affinity)
        rng = np.random.default_rng(13)
        n = 40_000
        a = rng.integers(1, P, size=n).astype(np.uint64)
        b = rng.integers(0, P, size=n).astype(np.uint64)
        y = rng.integers(0, 8, size=n).astype(np.uint64)
        premixed = rng.integers(0, P, size=64).astype(np.uint64)
        serial = FusedSupportKernel(premixed, 8, threads=1).support_counts(a, b, y)
        kernel = FusedSupportKernel(premixed, 8, threads=3)
        with kernel_timing_scope() as timing:
            fanned = kernel.support_counts(a, b, y)
        assert np.array_equal(serial, fanned)
        assert sum(timing.worker_tiles.values()) > 0
        # fanned-out spans must have run on pool workers, not inline
        assert any(slot >= 0 for slot in timing.worker_tiles)

    def test_inline_runs_report_slot_minus_one(self):
        rng = np.random.default_rng(14)
        n = 3_000
        a = rng.integers(1, P, size=n).astype(np.uint64)
        b = rng.integers(0, P, size=n).astype(np.uint64)
        y = rng.integers(0, 4, size=n).astype(np.uint64)
        kernel = FusedSupportKernel(
            rng.integers(0, P, size=16).astype(np.uint64), 4, threads=1
        )
        with kernel_timing_scope() as timing:
            kernel.support_counts(a, b, y)
        assert set(timing.worker_tiles) == {-1}

    def test_sticky_spans_reuse_workers(self, monkeypatch):
        """Under affinity, repeated decodes land spans on the same workers."""
        monkeypatch.setenv("REPRO_KERNEL_AFFINITY", "1")
        rng = np.random.default_rng(15)
        n = 50_000
        a = rng.integers(1, P, size=n).astype(np.uint64)
        b = rng.integers(0, P, size=n).astype(np.uint64)
        y = rng.integers(0, 8, size=n).astype(np.uint64)
        kernel = FusedSupportKernel(
            rng.integers(0, P, size=64).astype(np.uint64), 8, threads=2
        )
        with kernel_timing_scope() as first:
            kernel.support_counts(a, b, y)
        with kernel_timing_scope() as second:
            kernel.support_counts(a, b, y)
        assert set(first.worker_tiles) == set(second.worker_tiles)


def test_kernel_thread_count_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_KERNEL_THREADS", "5")
    assert kernel_thread_count() == 5
    monkeypatch.setenv("REPRO_KERNEL_THREADS", "not-a-number")
    assert kernel_thread_count() >= 1
    monkeypatch.delenv("REPRO_KERNEL_THREADS")
    assert kernel_thread_count() >= 1
