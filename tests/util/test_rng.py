"""Unit tests for deterministic randomness plumbing."""

import numpy as np
import pytest

from repro.util.rng import (
    derive_seed,
    ensure_generator,
    generators_for,
    per_user_seeds,
    spawn,
    spawn_many,
)


class TestEnsureGenerator:
    def test_passthrough(self):
        gen = np.random.default_rng(1)
        assert ensure_generator(gen) is gen

    def test_int_seed_deterministic(self):
        a = ensure_generator(42).random(5)
        b = ensure_generator(42).random(5)
        assert np.array_equal(a, b)

    def test_none_gives_generator(self):
        assert isinstance(ensure_generator(None), np.random.Generator)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            ensure_generator(True)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            ensure_generator(1.5)


class TestSpawn:
    def test_spawn_deterministic_given_parent_state(self):
        a = spawn(np.random.default_rng(7)).random(3)
        b = spawn(np.random.default_rng(7)).random(3)
        assert np.array_equal(a, b)

    def test_spawn_many_independent_streams(self):
        children = spawn_many(np.random.default_rng(7), 3)
        draws = [c.random(100) for c in children]
        assert not np.array_equal(draws[0], draws[1])
        assert not np.array_equal(draws[1], draws[2])

    def test_spawn_many_zero(self):
        assert spawn_many(np.random.default_rng(1), 0) == []

    def test_spawn_many_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_many(np.random.default_rng(1), -1)


class TestPerUserSeeds:
    def test_stable_across_calls(self):
        a = per_user_seeds(123, 100)
        b = per_user_seeds(123, 100)
        assert np.array_equal(a, b)

    def test_prefix_property(self):
        short = per_user_seeds(123, 10)
        long = per_user_seeds(123, 100)
        assert np.array_equal(short, long[:10])

    def test_distinct_across_users(self):
        seeds = per_user_seeds(123, 10_000)
        assert np.unique(seeds).size == 10_000

    def test_different_master_seed_differs(self):
        assert not np.array_equal(per_user_seeds(1, 50), per_user_seeds(2, 50))

    def test_negative_count_raises(self):
        with pytest.raises(ValueError):
            per_user_seeds(1, -1)


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(5, 1, 2) == derive_seed(5, 1, 2)

    def test_component_order_matters(self):
        assert derive_seed(5, 1, 2) != derive_seed(5, 2, 1)

    def test_fits_in_63_bits(self):
        for tag in range(100):
            assert 0 <= derive_seed(999, tag) < 2**63

    def test_no_collisions_small_scan(self):
        seen = {derive_seed(7, i) for i in range(10_000)}
        assert len(seen) == 10_000


class TestGeneratorsFor:
    def test_builds_one_per_seed(self):
        gens = generators_for([1, 2, 3])
        assert len(gens) == 3
        assert all(isinstance(g, np.random.Generator) for g in gens)

    def test_same_seed_same_stream(self):
        g1, g2 = generators_for([9, 9])
        assert np.array_equal(g1.random(4), g2.random(4))
