"""Unit tests for the shared argument validators."""

import math

import numpy as np
import pytest

from repro.util.validation import (
    as_value_array,
    check_delta,
    check_domain_values,
    check_epsilon,
    check_fraction,
    check_in_range,
    check_nonnegative_int,
    check_positive_int,
    check_probability,
)


class TestCheckEpsilon:
    def test_accepts_positive_float(self):
        assert check_epsilon(1.5) == 1.5

    def test_accepts_int_and_returns_float(self):
        out = check_epsilon(2)
        assert out == 2.0
        assert isinstance(out, float)

    def test_rejects_zero(self):
        with pytest.raises(ValueError, match="must be > 0"):
            check_epsilon(0.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="must be > 0"):
            check_epsilon(-1.0)

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            check_epsilon(math.nan)

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            check_epsilon(math.inf)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_epsilon(True)

    def test_rejects_string(self):
        with pytest.raises(TypeError):
            check_epsilon("1.0")

    def test_custom_name_in_message(self):
        with pytest.raises(ValueError, match="my_eps"):
            check_epsilon(-1.0, name="my_eps")


class TestCheckDelta:
    def test_accepts_zero(self):
        assert check_delta(0.0) == 0.0

    def test_accepts_small_positive(self):
        assert check_delta(1e-9) == 1e-9

    def test_rejects_one(self):
        with pytest.raises(ValueError):
            check_delta(1.0)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_delta(-1e-9)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_delta(math.nan)


class TestCheckProbability:
    def test_accepts_boundaries(self):
        assert check_probability(0.0) == 0.0
        assert check_probability(1.0) == 1.0

    def test_rejects_above_one(self):
        with pytest.raises(ValueError):
            check_probability(1.0001)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_probability(False)


class TestCheckPositiveInt:
    def test_accepts_one(self):
        assert check_positive_int(1) == 1

    def test_accepts_numpy_integer(self):
        assert check_positive_int(np.int64(5)) == 5

    def test_rejects_zero(self):
        with pytest.raises(ValueError):
            check_positive_int(0)

    def test_rejects_bool(self):
        with pytest.raises(TypeError):
            check_positive_int(True)

    def test_rejects_float(self):
        with pytest.raises(TypeError):
            check_positive_int(1.0)


class TestCheckNonnegativeInt:
    def test_accepts_zero(self):
        assert check_nonnegative_int(0) == 0

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            check_nonnegative_int(-1)


class TestCheckInRange:
    def test_inclusive_boundaries(self):
        assert check_in_range(0.0, 0.0, 1.0) == 0.0
        assert check_in_range(1.0, 0.0, 1.0) == 1.0

    def test_exclusive_rejects_boundary(self):
        with pytest.raises(ValueError):
            check_in_range(0.0, 0.0, 1.0, inclusive=False)

    def test_rejects_nan(self):
        with pytest.raises(ValueError):
            check_in_range(math.nan, 0.0, 1.0)


class TestCheckFraction:
    def test_valid(self):
        assert check_fraction(0.5) == 0.5

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            check_fraction(1.5)


class TestCheckDomainValues:
    def test_valid_int_array(self):
        out = check_domain_values([0, 1, 2], 3)
        assert out.dtype == np.int64
        assert list(out) == [0, 1, 2]

    def test_accepts_integral_floats(self):
        out = check_domain_values(np.array([0.0, 2.0]), 3)
        assert out.dtype == np.int64

    def test_rejects_fractional_floats(self):
        with pytest.raises(TypeError):
            check_domain_values(np.array([0.5]), 3)

    def test_rejects_out_of_domain_high(self):
        with pytest.raises(ValueError, match="out-of-domain"):
            check_domain_values([0, 3], 3)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="out-of-domain"):
            check_domain_values([-1], 3)

    def test_rejects_empty(self):
        with pytest.raises(ValueError, match="non-empty"):
            check_domain_values([], 3)

    def test_rejects_2d(self):
        with pytest.raises(ValueError, match="one-dimensional"):
            check_domain_values(np.zeros((2, 2), dtype=int), 3)


class TestAsValueArray:
    def test_valid(self):
        out = as_value_array([1.0, 2.5])
        assert out.dtype == np.float64

    def test_rejects_nan(self):
        with pytest.raises(ValueError, match="finite"):
            as_value_array([1.0, math.nan])

    def test_rejects_inf(self):
        with pytest.raises(ValueError, match="finite"):
            as_value_array([math.inf])

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            as_value_array([])
