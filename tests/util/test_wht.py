"""Unit tests for the Walsh-Hadamard transform utilities."""

import numpy as np
import pytest

from repro.util.wht import (
    fwht,
    hadamard_entries,
    hadamard_row,
    is_power_of_two,
    next_power_of_two,
)


class TestPowerOfTwo:
    def test_is_power_of_two(self):
        assert is_power_of_two(1)
        assert is_power_of_two(2)
        assert is_power_of_two(1024)
        assert not is_power_of_two(0)
        assert not is_power_of_two(3)
        assert not is_power_of_two(-4)

    def test_next_power_of_two(self):
        assert next_power_of_two(1) == 1
        assert next_power_of_two(2) == 2
        assert next_power_of_two(3) == 4
        assert next_power_of_two(1000) == 1024

    def test_next_power_rejects_zero(self):
        with pytest.raises(ValueError):
            next_power_of_two(0)


class TestFwht:
    def test_involution_scaled(self):
        """H(H(x)) = d·x."""
        rng = np.random.default_rng(3)
        x = rng.normal(size=64)
        assert np.allclose(fwht(fwht(x)), 64 * x)

    def test_matches_dense_matrix(self):
        d = 16
        dense = np.array(
            [[1.0 if bin(i & j).count("1") % 2 == 0 else -1.0 for j in range(d)]
             for i in range(d)]
        )
        rng = np.random.default_rng(5)
        x = rng.normal(size=d)
        assert np.allclose(fwht(x), dense @ x)

    def test_delta_gives_row(self):
        d = 32
        e3 = np.zeros(d)
        e3[3] = 1.0
        assert np.allclose(fwht(e3), hadamard_row(3, d))

    def test_batch_last_axis(self):
        rng = np.random.default_rng(7)
        batch = rng.normal(size=(5, 16))
        out = fwht(batch)
        for i in range(5):
            assert np.allclose(out[i], fwht(batch[i]))

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError, match="power of two"):
            fwht(np.zeros(10))

    def test_does_not_mutate_input(self):
        x = np.ones(8)
        fwht(x)
        assert np.array_equal(x, np.ones(8))

    def test_parseval(self):
        """‖Hx‖² = d·‖x‖² (unnormalized transform)."""
        rng = np.random.default_rng(11)
        x = rng.normal(size=128)
        assert np.isclose(np.sum(fwht(x) ** 2), 128 * np.sum(x**2))


class TestHadamardEntries:
    def test_values_are_pm_one(self):
        rows = np.arange(64, dtype=np.uint64)
        cols = np.arange(64, dtype=np.uint64)[::-1].copy()
        out = hadamard_entries(rows, cols)
        assert set(np.unique(out)) <= {-1.0, 1.0}

    def test_first_row_all_ones(self):
        out = hadamard_entries(np.uint64(0), np.arange(16, dtype=np.uint64))
        assert np.all(out == 1.0)

    def test_symmetry(self):
        rng = np.random.default_rng(13)
        r = rng.integers(0, 256, 100).astype(np.uint64)
        c = rng.integers(0, 256, 100).astype(np.uint64)
        assert np.array_equal(hadamard_entries(r, c), hadamard_entries(c, r))

    def test_row_orthogonality(self):
        d = 64
        cols = np.arange(d, dtype=np.uint64)
        for i, j in [(1, 2), (5, 9), (0, 63)]:
            ri = hadamard_entries(np.uint64(i), cols)
            rj = hadamard_entries(np.uint64(j), cols)
            assert ri @ rj == 0.0


class TestHadamardRow:
    def test_matches_entries(self):
        row = hadamard_row(5, 32)
        expected = hadamard_entries(np.uint64(5), np.arange(32, dtype=np.uint64))
        assert np.array_equal(row, expected)

    def test_rejects_bad_order(self):
        with pytest.raises(ValueError):
            hadamard_row(0, 12)

    def test_rejects_out_of_range_index(self):
        with pytest.raises(IndexError):
            hadamard_row(16, 16)
